// Package dataset defines the relational data model used throughout ARCS:
// attributes, schemas, tuples, in-memory tables and streaming tuple
// sources, plus CSV import/export.
//
// Every attribute value is stored as a float64. Quantitative attributes
// hold their numeric value directly; categorical attributes hold the
// integer code assigned by the schema's per-attribute dictionary. This
// uniform encoding is what lets the binner, the association rule engine
// and the classifiers treat tuples as flat numeric vectors while still
// being able to print values in their original form.
package dataset

import (
	"fmt"
	"sort"
)

// Kind distinguishes quantitative (ordered, continuous) attributes from
// categorical (unordered, finite-domain) attributes.
type Kind int

const (
	// Quantitative attributes have an implicit ordering and may assume
	// continuous values, e.g. "salary", "age", "interest rate".
	Quantitative Kind = iota
	// Categorical attributes have a finite number of possible values with
	// no ordering amongst themselves, e.g. "zip code", "hair color".
	Categorical
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case Quantitative:
		return "quantitative"
	case Categorical:
		return "categorical"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Attribute describes a single column of a table.
type Attribute struct {
	Name string
	Kind Kind

	// cats is the dictionary for categorical attributes: code -> label.
	cats []string
	// catIndex is the reverse dictionary: label -> code.
	catIndex map[string]int
}

// NumCategories reports the number of distinct category labels registered
// for the attribute. It is zero for quantitative attributes.
func (a *Attribute) NumCategories() int { return len(a.cats) }

// Category returns the label for a category code. It panics if the code is
// out of range, which always indicates a programming error (codes are only
// produced by CategoryCode on the same attribute).
func (a *Attribute) Category(code int) string {
	if code < 0 || code >= len(a.cats) {
		panic(fmt.Sprintf("dataset: category code %d out of range for attribute %q (%d categories)",
			code, a.Name, len(a.cats)))
	}
	return a.cats[code]
}

// Categories returns a copy of the attribute's category labels in code
// order.
func (a *Attribute) Categories() []string {
	out := make([]string, len(a.cats))
	copy(out, a.cats)
	return out
}

// CategoryCode returns the code for a label, registering the label if it
// has not been seen before. Calling it on a quantitative attribute is an
// error.
func (a *Attribute) CategoryCode(label string) (int, error) {
	if a.Kind != Categorical {
		return 0, fmt.Errorf("dataset: attribute %q is %s, not categorical", a.Name, a.Kind)
	}
	if a.catIndex == nil {
		a.catIndex = make(map[string]int)
	}
	if code, ok := a.catIndex[label]; ok {
		return code, nil
	}
	code := len(a.cats)
	a.cats = append(a.cats, label)
	a.catIndex[label] = code
	return code, nil
}

// LookupCategory returns the code for a label without registering new
// labels. The second result reports whether the label is known.
func (a *Attribute) LookupCategory(label string) (int, bool) {
	code, ok := a.catIndex[label]
	return code, ok
}

// Schema is an ordered collection of attributes. The zero value is an
// empty schema ready for use.
type Schema struct {
	attrs  []*Attribute
	byName map[string]int
}

// NewSchema constructs a schema from (name, kind) pairs.
func NewSchema(attrs ...Attribute) *Schema {
	s := &Schema{byName: make(map[string]int, len(attrs))}
	for i := range attrs {
		s.MustAdd(attrs[i].Name, attrs[i].Kind)
	}
	return s
}

// Add appends an attribute and returns it. Duplicate names are rejected.
func (s *Schema) Add(name string, kind Kind) (*Attribute, error) {
	if s.byName == nil {
		s.byName = make(map[string]int)
	}
	if _, dup := s.byName[name]; dup {
		return nil, fmt.Errorf("dataset: duplicate attribute %q", name)
	}
	a := &Attribute{Name: name, Kind: kind}
	s.byName[name] = len(s.attrs)
	s.attrs = append(s.attrs, a)
	return a, nil
}

// MustAdd is Add but panics on error; intended for static schema
// construction where a duplicate is a programming error.
func (s *Schema) MustAdd(name string, kind Kind) *Attribute {
	a, err := s.Add(name, kind)
	if err != nil {
		panic(err)
	}
	return a
}

// Len reports the number of attributes.
func (s *Schema) Len() int { return len(s.attrs) }

// At returns the attribute at position i.
func (s *Schema) At(i int) *Attribute { return s.attrs[i] }

// Index returns the position of the named attribute, or an error if it
// does not exist.
func (s *Schema) Index(name string) (int, error) {
	i, ok := s.byName[name]
	if !ok {
		return 0, fmt.Errorf("dataset: no attribute %q (have %v)", name, s.Names())
	}
	return i, nil
}

// MustIndex is Index but panics on unknown names.
func (s *Schema) MustIndex(name string) int {
	i, err := s.Index(name)
	if err != nil {
		panic(err)
	}
	return i
}

// Attr returns the named attribute, or nil if it does not exist.
func (s *Schema) Attr(name string) *Attribute {
	if i, ok := s.byName[name]; ok {
		return s.attrs[i]
	}
	return nil
}

// Names returns the attribute names in schema order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.attrs))
	for i, a := range s.attrs {
		out[i] = a.Name
	}
	return out
}

// QuantitativeNames returns the names of the quantitative attributes in
// schema order. Useful for enumerating candidate LHS attribute pairs.
func (s *Schema) QuantitativeNames() []string {
	var out []string
	for _, a := range s.attrs {
		if a.Kind == Quantitative {
			out = append(out, a.Name)
		}
	}
	return out
}

// CategoricalNames returns the names of the categorical attributes in
// schema order.
func (s *Schema) CategoricalNames() []string {
	var out []string
	for _, a := range s.attrs {
		if a.Kind == Categorical {
			out = append(out, a.Name)
		}
	}
	return out
}

// Clone returns a deep copy of the schema, including category
// dictionaries. Sources that encode labels lazily share attribute state;
// cloning isolates a schema from further mutation.
func (s *Schema) Clone() *Schema {
	c := &Schema{byName: make(map[string]int, len(s.attrs))}
	for _, a := range s.attrs {
		na := &Attribute{Name: a.Name, Kind: a.Kind}
		if len(a.cats) > 0 {
			na.cats = append([]string(nil), a.cats...)
			na.catIndex = make(map[string]int, len(a.cats))
			for code, label := range na.cats {
				na.catIndex[label] = code
			}
		}
		c.byName[a.Name] = len(c.attrs)
		c.attrs = append(c.attrs, na)
	}
	return c
}

// FormatValue renders the encoded value of attribute i in human form:
// the category label for categoricals, %g for quantitative values.
func (s *Schema) FormatValue(i int, v float64) string {
	a := s.attrs[i]
	if a.Kind == Categorical {
		code := int(v)
		if code >= 0 && code < len(a.cats) {
			return a.cats[code]
		}
		return fmt.Sprintf("<cat %d>", code)
	}
	return fmt.Sprintf("%g", v)
}

// SortedCategories returns the labels of a categorical attribute sorted
// lexicographically (not in code order). It is primarily useful for
// deterministic output in reports and tests.
func (a *Attribute) SortedCategories() []string {
	out := a.Categories()
	sort.Strings(out)
	return out
}
