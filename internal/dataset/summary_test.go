package dataset

import (
	"math"
	"strings"
	"testing"
)

func TestSummarize(t *testing.T) {
	tb, err := ReadCSV(strings.NewReader(sampleCSV), nil)
	if err != nil {
		t.Fatal(err)
	}
	sums := Summarize(tb)
	if len(sums) != 3 {
		t.Fatalf("summaries = %d", len(sums))
	}
	age := sums[0]
	if age.Name != "age" || age.Kind != Quantitative {
		t.Fatalf("first summary = %+v", age)
	}
	if age.Min != 30 || age.Max != 62 {
		t.Errorf("age range [%v, %v]", age.Min, age.Max)
	}
	wantMean := (30.0 + 45 + 62) / 3
	if math.Abs(age.Mean-wantMean) > 1e-9 {
		t.Errorf("age mean = %v, want %v", age.Mean, wantMean)
	}
	if age.StdDev <= 0 {
		t.Errorf("age stddev = %v", age.StdDev)
	}
	grp := sums[2]
	if grp.Kind != Categorical || grp.DistinctValues != 2 {
		t.Fatalf("group summary = %+v", grp)
	}
	// A appears twice, B once; descending order.
	if grp.TopValues[0].Label != "A" || grp.TopValues[0].Count != 2 {
		t.Errorf("top value = %+v", grp.TopValues[0])
	}
}

func TestSummarizeEmptyTable(t *testing.T) {
	tb := NewTable(demoSchema())
	sums := Summarize(tb)
	if sums[0].Min != 0 || sums[0].Max != 0 {
		t.Errorf("empty quantitative summary = %+v", sums[0])
	}
	if sums[2].DistinctValues != 0 {
		t.Errorf("empty categorical summary = %+v", sums[2])
	}
}

func TestRenderSummary(t *testing.T) {
	tb, _ := ReadCSV(strings.NewReader(sampleCSV), nil)
	out := RenderSummary(Summarize(tb), 1)
	if !strings.Contains(out, "age") || !strings.Contains(out, "quantitative") {
		t.Errorf("render missing quantitative row:\n%s", out)
	}
	if !strings.Contains(out, "A×2") {
		t.Errorf("render missing categorical counts:\n%s", out)
	}
	if !strings.Contains(out, "… 1 more") {
		t.Errorf("render missing truncation marker:\n%s", out)
	}
}
