package dataset

import (
	"testing"
)

func shardSchema() *Schema {
	return NewSchema(Attribute{Name: "v", Kind: Quantitative})
}

// drain reads a source to completion, cloning every tuple.
func drain(t *testing.T, src Source) []Tuple {
	t.Helper()
	var out []Tuple
	if err := ForEach(src, func(tp Tuple) error {
		out = append(out, tp.Clone())
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestTableShardPartition: the concatenation of all shards replays the
// table exactly, for divisor and non-divisor worker counts.
func TestTableShardPartition(t *testing.T) {
	tab := NewTable(shardSchema())
	for i := 0; i < 11; i++ {
		tab.MustAppend(Tuple{float64(i)})
	}
	for _, n := range []int{1, 2, 3, 4, 11, 16} {
		var got []Tuple
		for i := 0; i < n; i++ {
			sh, err := tab.Shard(i, n)
			if err != nil {
				t.Fatalf("Shard(%d, %d): %v", i, n, err)
			}
			got = append(got, drain(t, sh)...)
		}
		if len(got) != tab.Len() {
			t.Fatalf("n=%d: shards yield %d tuples, want %d", n, len(got), tab.Len())
		}
		for i, tp := range got {
			if tp[0] != float64(i) {
				t.Fatalf("n=%d: tuple %d = %v, want %d (order preserved)", n, i, tp, i)
			}
		}
	}
}

func TestTableShardRejectsOutOfRange(t *testing.T) {
	tab := NewTable(shardSchema())
	tab.MustAppend(Tuple{1})
	for _, c := range [][2]int{{-1, 2}, {2, 2}, {0, 0}, {0, -1}} {
		if _, err := tab.Shard(c[0], c[1]); err == nil {
			t.Errorf("Shard(%d, %d) succeeded, want error", c[0], c[1])
		}
	}
}

// TestFuncSourceShardPartition mirrors the table test for the generator
// source, including that shards are independent (no shared cursor).
func TestFuncSourceShardPartition(t *testing.T) {
	src := NewFuncSource(shardSchema(), 10, func(i int, out Tuple) {
		out[0] = float64(i)
	})
	for _, n := range []int{1, 3, 10, 12} {
		var got []Tuple
		for i := 0; i < n; i++ {
			sh, err := src.Shard(i, n)
			if err != nil {
				t.Fatalf("Shard(%d, %d): %v", i, n, err)
			}
			got = append(got, drain(t, sh)...)
		}
		if len(got) != 10 {
			t.Fatalf("n=%d: shards yield %d tuples, want 10", n, len(got))
		}
		for i, tp := range got {
			if tp[0] != float64(i) {
				t.Fatalf("n=%d: tuple %d = %v, want %d", n, i, tp, i)
			}
		}
	}
}

func TestFuncSourceShardRejectsOutOfRange(t *testing.T) {
	src := NewFuncSource(shardSchema(), 10, func(i int, out Tuple) { out[0] = float64(i) })
	for _, c := range [][2]int{{-1, 2}, {2, 2}, {0, 0}} {
		if _, err := src.Shard(c[0], c[1]); err == nil {
			t.Errorf("Shard(%d, %d) succeeded, want error", c[0], c[1])
		}
	}
}

// Compile-time checks that the range-partitionable sources implement
// Sharder and streams do not accidentally gain it.
var (
	_ Sharder = (*Table)(nil)
	_ Sharder = (*FuncSource)(nil)
)
