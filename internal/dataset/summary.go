package dataset

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// AttributeSummary describes one attribute of a table.
type AttributeSummary struct {
	Name string
	Kind Kind

	// Quantitative statistics (zero for categorical attributes).
	Min, Max, Mean, StdDev float64

	// Categorical statistics (nil for quantitative attributes): label
	// counts in descending frequency order.
	TopValues []ValueCount
	// DistinctValues is the number of distinct categories.
	DistinctValues int
}

// ValueCount is one categorical label with its occurrence count.
type ValueCount struct {
	Label string
	Count int
}

// Summarize computes per-attribute descriptive statistics for a table —
// the quick profile a user reads before choosing the LHS attribute pair
// and the criterion.
func Summarize(tb *Table) []AttributeSummary {
	schema := tb.Schema()
	out := make([]AttributeSummary, schema.Len())
	for i := 0; i < schema.Len(); i++ {
		a := schema.At(i)
		s := AttributeSummary{Name: a.Name, Kind: a.Kind}
		if a.Kind == Quantitative {
			s.Min, s.Max = math.Inf(1), math.Inf(-1)
			var sum, sumSq float64
			for r := 0; r < tb.Len(); r++ {
				v := tb.Row(r)[i]
				if v < s.Min {
					s.Min = v
				}
				if v > s.Max {
					s.Max = v
				}
				sum += v
				sumSq += v * v
			}
			if n := float64(tb.Len()); n > 0 {
				s.Mean = sum / n
				variance := sumSq/n - s.Mean*s.Mean
				if variance > 0 {
					s.StdDev = math.Sqrt(variance)
				}
			} else {
				s.Min, s.Max = 0, 0
			}
		} else {
			counts := make(map[int]int)
			for r := 0; r < tb.Len(); r++ {
				counts[int(tb.Row(r)[i])]++
			}
			s.DistinctValues = len(counts)
			for code, n := range counts {
				s.TopValues = append(s.TopValues, ValueCount{Label: a.Category(code), Count: n})
			}
			sort.Slice(s.TopValues, func(x, y int) bool {
				if s.TopValues[x].Count != s.TopValues[y].Count {
					return s.TopValues[x].Count > s.TopValues[y].Count
				}
				return s.TopValues[x].Label < s.TopValues[y].Label
			})
		}
		out[i] = s
	}
	return out
}

// RenderSummary formats summaries as an aligned table, truncating the
// categorical value list at maxValues entries (0 means 5).
func RenderSummary(summaries []AttributeSummary, maxValues int) string {
	if maxValues <= 0 {
		maxValues = 5
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %-13s %s\n", "attribute", "kind", "statistics")
	for _, s := range summaries {
		if s.Kind == Quantitative {
			fmt.Fprintf(&b, "%-16s %-13s min %.4g  max %.4g  mean %.4g  stddev %.4g\n",
				s.Name, s.Kind, s.Min, s.Max, s.Mean, s.StdDev)
			continue
		}
		var parts []string
		for i, vc := range s.TopValues {
			if i == maxValues {
				parts = append(parts, fmt.Sprintf("… %d more", s.DistinctValues-maxValues))
				break
			}
			parts = append(parts, fmt.Sprintf("%s×%d", vc.Label, vc.Count))
		}
		fmt.Fprintf(&b, "%-16s %-13s %d values: %s\n",
			s.Name, s.Kind, s.DistinctValues, strings.Join(parts, ", "))
	}
	return b.String()
}
