package dataset

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// ReadCSV parses comma-separated data with a header row into a Table.
//
// If schema is nil, one is inferred: a column whose every value parses as
// a float is Quantitative, otherwise Categorical. When a schema is given,
// the header must contain exactly the schema's attributes in order, and
// values are parsed according to the declared kinds (categorical labels
// are registered in the schema's dictionaries as they appear).
func ReadCSV(r io.Reader, schema *Schema) (*Table, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	headerCopy := append([]string(nil), header...)

	var records [][]string
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV row %d: %w", len(records)+2, err)
		}
		records = append(records, append([]string(nil), rec...))
	}

	if schema == nil {
		schema = inferSchema(headerCopy, records)
	} else {
		if schema.Len() != len(headerCopy) {
			return nil, fmt.Errorf("dataset: CSV has %d columns, schema has %d attributes",
				len(headerCopy), schema.Len())
		}
		for i, name := range headerCopy {
			if schema.At(i).Name != name {
				return nil, fmt.Errorf("dataset: CSV column %d is %q, schema expects %q",
					i, name, schema.At(i).Name)
			}
		}
	}

	tb := NewTable(schema)
	tb.rows = make([]Tuple, 0, len(records))
	for rowNo, rec := range records {
		if len(rec) != schema.Len() {
			return nil, fmt.Errorf("dataset: CSV row %d has %d fields, want %d", rowNo+2, len(rec), schema.Len())
		}
		tp := make(Tuple, schema.Len())
		for i, field := range rec {
			a := schema.At(i)
			switch a.Kind {
			case Quantitative:
				v, err := strconv.ParseFloat(field, 64)
				if err != nil {
					return nil, fmt.Errorf("dataset: CSV row %d, attribute %q: %w", rowNo+2, a.Name, err)
				}
				tp[i] = v
			case Categorical:
				code, err := a.CategoryCode(field)
				if err != nil {
					return nil, err
				}
				tp[i] = float64(code)
			}
		}
		tb.rows = append(tb.rows, tp)
	}
	return tb, nil
}

func inferSchema(header []string, records [][]string) *Schema {
	s := &Schema{byName: make(map[string]int, len(header))}
	for col, name := range header {
		kind := Quantitative
		seen := false
		for _, rec := range records {
			if col >= len(rec) {
				continue
			}
			seen = true
			if _, err := strconv.ParseFloat(rec[col], 64); err != nil {
				kind = Categorical
				break
			}
		}
		if !seen {
			kind = Categorical
		}
		// Header names may repeat in malformed files; disambiguate.
		n := name
		for i := 2; ; i++ {
			if _, dup := s.byName[n]; !dup {
				break
			}
			n = fmt.Sprintf("%s_%d", name, i)
		}
		s.MustAdd(n, kind)
	}
	return s
}

// WriteCSV streams src as comma-separated text with a header row,
// rendering categorical codes back to their labels.
func WriteCSV(w io.Writer, src Source) error {
	return WriteCSVContext(context.Background(), w, src)
}

// WriteCSVContext is WriteCSV with checkpointed cancellation: a canceled
// context stops the pass at the next checkpoint, leaving the output
// truncated at a row boundary. A background context adds no per-row cost.
func WriteCSVContext(ctx context.Context, w io.Writer, src Source) error {
	cw := csv.NewWriter(w)
	schema := src.Schema()
	if err := cw.Write(schema.Names()); err != nil {
		return err
	}
	rec := make([]string, schema.Len())
	err := ForEachContext(ctx, src, func(t Tuple) error {
		if len(t) != schema.Len() {
			return ErrSchemaMismatch
		}
		for i, v := range t {
			a := schema.At(i)
			if a.Kind == Categorical {
				rec[i] = a.Category(int(v))
			} else {
				rec[i] = strconv.FormatFloat(v, 'g', -1, 64)
			}
		}
		return cw.Write(rec)
	})
	if err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}
