package dataset

import "fmt"

// BinLabeler converts a value to a bin number and names each bin. It is
// satisfied by the binning package's binners via the Discretize adapter
// in core; defining the minimal interface here avoids an import cycle.
type BinLabeler interface {
	NumBins() int
	Bin(v float64) int
	Bounds(b int) (lo, hi float64)
}

// Discretized wraps a source, replacing one quantitative attribute with
// a categorical attribute whose values are the attribute's bins — the
// paper's §2.2 provision for quantitative RHS criteria ("the RHS
// attribute could be quantitative but would first require binning with
// the resulting bins then treated as categorical values").
//
// Bin labels render the value range, e.g. "salary[20000,46000)".
type Discretized struct {
	src    Source
	schema *Schema
	idx    int
	binner BinLabeler
	buf    Tuple
}

// Discretize builds the derived source. The named attribute must exist
// and be quantitative in the source schema. The result reports its
// length when the underlying source does.
func Discretize(src Source, attr string, binner BinLabeler) (Source, error) {
	d, err := discretize(src, attr, binner)
	if err != nil {
		return nil, err
	}
	if _, ok := src.(SizedSource); ok {
		return sizedDiscretized{d}, nil
	}
	return d, nil
}

// sizedDiscretized adds Len when the underlying source is sized.
type sizedDiscretized struct{ *Discretized }

// Len implements SizedSource.
func (s sizedDiscretized) Len() int { return s.src.(SizedSource).Len() }

func discretize(src Source, attr string, binner BinLabeler) (*Discretized, error) {
	base := src.Schema()
	idx, err := base.Index(attr)
	if err != nil {
		return nil, err
	}
	if base.At(idx).Kind != Quantitative {
		return nil, fmt.Errorf("dataset: attribute %q is already categorical", attr)
	}
	if binner.NumBins() < 2 {
		return nil, fmt.Errorf("dataset: need at least 2 bins to discretize %q", attr)
	}
	schema := &Schema{}
	for i := 0; i < base.Len(); i++ {
		a := base.At(i)
		if i != idx {
			na := schema.MustAdd(a.Name, a.Kind)
			if a.Kind == Categorical {
				for _, label := range a.Categories() {
					na.CategoryCode(label)
				}
			}
			continue
		}
		na := schema.MustAdd(a.Name, Categorical)
		for b := 0; b < binner.NumBins(); b++ {
			lo, hi := binner.Bounds(b)
			// Registration order makes bin b's label get code b.
			na.CategoryCode(fmt.Sprintf("%s[%g,%g)", a.Name, lo, hi))
		}
	}
	return &Discretized{
		src:    src,
		schema: schema,
		idx:    idx,
		binner: binner,
		buf:    make(Tuple, base.Len()),
	}, nil
}

// Schema implements Source.
func (d *Discretized) Schema() *Schema { return d.schema }

// Reset implements Source.
func (d *Discretized) Reset() error { return d.src.Reset() }

// Next implements Source. The returned tuple is reused between calls.
func (d *Discretized) Next() (Tuple, error) {
	t, err := d.src.Next()
	if err != nil {
		return nil, err
	}
	copy(d.buf, t)
	d.buf[d.idx] = float64(d.binner.Bin(t[d.idx]))
	return d.buf, nil
}

var _ Source = (*Discretized)(nil)
var _ SizedSource = sizedDiscretized{}
