package dataset

import (
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"arcs/internal/obs"
)

// Retry configures retry-with-backoff for transient source errors (see
// IsTransient). Backoff is exponential from Base, capped at Cap, with
// seeded half-jitter so retry storms decorrelate deterministically.
type Retry struct {
	// Max is the number of retries per Next call. Zero disables retrying.
	Max int
	// Base is the first backoff delay. Zero means 1ms.
	Base time.Duration
	// Cap bounds the exponential growth. Zero means 250ms.
	Cap time.Duration
	// Seed drives the jitter; equal seeds replay identical delays.
	Seed int64
	// Sleep replaces time.Sleep in tests. Nil means time.Sleep.
	Sleep func(time.Duration)
}

func (r Retry) withDefaults() Retry {
	if r.Base <= 0 {
		r.Base = time.Millisecond
	}
	if r.Cap <= 0 {
		r.Cap = 250 * time.Millisecond
	}
	if r.Sleep == nil {
		r.Sleep = time.Sleep
	}
	return r
}

// Quarantine configures the row-quarantine policy for malformed input:
// rows that fail with a *RowError, and rows carrying non-finite
// quantitative values, are counted by reason and skipped until the
// per-pass budget runs out.
type Quarantine struct {
	// MaxBadRows is the number of rows each pass may quarantine before
	// the pass fails with ErrTooManyBadRows. Negative means unlimited;
	// zero means any bad row is fatal (the strict default).
	MaxBadRows int
	// OnBad, when set, observes every quarantined row (reason, position,
	// cause) — e.g. to log the first few offenders.
	OnBad func(reason string, row int, err error)
}

// ErrTooManyBadRows is returned (wrapped) when a pass quarantines more
// rows than Quarantine.MaxBadRows allows.
var ErrTooManyBadRows = errors.New("dataset: too many bad rows")

// ResilientStats is a cumulative account of a Resilient source's
// interventions across all passes.
type ResilientStats struct {
	// Retries counts retried Next calls after transient errors.
	Retries int64
	// Quarantined counts skipped rows by RowError reason.
	Quarantined map[string]int64
}

// Total sums the quarantined rows across reasons.
func (s ResilientStats) Total() int64 {
	var n int64
	for _, v := range s.Quarantined {
		n += v
	}
	return n
}

// Resilient wraps a Source with the two graceful-degradation policies a
// served pipeline needs against dirty or flaky input: transient errors
// are retried with jittered exponential backoff, and row-scoped errors
// (plus rows with NaN/±Inf quantitative values) are quarantined and
// skipped within a configurable per-pass budget. Everything else — I/O
// failures, schema mismatches — propagates unchanged.
//
// Like the sources it wraps, a Resilient is not safe for concurrent use.
type Resilient struct {
	src   Source
	retry Retry
	q     Quarantine
	rng   *rand.Rand

	quantIdx []int // schema positions of quantitative attributes
	rowsSeen int   // per-pass row counter for non-RowError positions

	passBad int // per-pass quarantined rows, reset on Reset
	stats   ResilientStats

	// Metrics registry hooks (nil without Observe; all nil-safe).
	retriesC    *obs.Counter
	quarTotalC  *obs.Counter
	reg         *obs.Registry
	quarReasonC map[string]*obs.Counter
}

// NewResilient wraps src with the given retry and quarantine policies.
func NewResilient(src Source, retry Retry, q Quarantine) *Resilient {
	r := &Resilient{
		src:   src,
		retry: retry.withDefaults(),
		q:     q,
		rng:   rand.New(rand.NewSource(retry.Seed)),
		stats: ResilientStats{Quarantined: map[string]int64{}},
	}
	schema := src.Schema()
	for i := 0; i < schema.Len(); i++ {
		if schema.At(i).Kind == Quantitative {
			r.quantIdx = append(r.quantIdx, i)
		}
	}
	return r
}

// Observe mirrors the retry/quarantine counters into a metrics registry:
// source_retries_total, rows_quarantined_total and per-reason
// rows_quarantined_<reason> counters. Call before streaming.
func (r *Resilient) Observe(reg *obs.Registry) {
	r.reg = reg
	r.retriesC = reg.Counter("source_retries_total")
	r.quarTotalC = reg.Counter("rows_quarantined_total")
	r.quarReasonC = map[string]*obs.Counter{}
}

// Stats reports the cumulative interventions so far.
func (r *Resilient) Stats() ResilientStats {
	out := ResilientStats{Retries: r.stats.Retries,
		Quarantined: make(map[string]int64, len(r.stats.Quarantined))}
	for k, v := range r.stats.Quarantined {
		out.Quarantined[k] = v
	}
	return out
}

// Schema implements Source.
func (r *Resilient) Schema() *Schema { return r.src.Schema() }

// Reset implements Source; the per-pass quarantine budget starts fresh.
func (r *Resilient) Reset() error {
	r.passBad = 0
	r.rowsSeen = 0
	return r.src.Reset()
}

// Close forwards to the wrapped source when it is closeable.
func (r *Resilient) Close() error {
	if c, ok := r.src.(interface{ Close() error }); ok {
		return c.Close()
	}
	return nil
}

// Next implements Source with the retry and quarantine policies applied.
func (r *Resilient) Next() (Tuple, error) {
	attempt := 0
	for {
		t, err := r.src.Next()
		if err == nil {
			r.rowsSeen++
			if bad, reason := r.nonFinite(t); bad {
				if qerr := r.quarantine(reason, r.rowsSeen,
					fmt.Errorf("non-finite value in row %d", r.rowsSeen)); qerr != nil {
					return nil, qerr
				}
				attempt = 0
				continue
			}
			return t, nil
		}
		if err == io.EOF {
			return nil, err
		}
		if re := AsRowError(err); re != nil {
			if qerr := r.quarantine(re.Reason, re.Row, err); qerr != nil {
				return nil, qerr
			}
			attempt = 0
			continue
		}
		if IsTransient(err) && attempt < r.retry.Max {
			attempt++
			r.stats.Retries++
			r.retriesC.Inc()
			r.retry.Sleep(r.backoff(attempt))
			continue
		}
		if attempt > 0 {
			return nil, fmt.Errorf("dataset: giving up after %d retries: %w", attempt, err)
		}
		return nil, err
	}
}

// backoff computes the jittered exponential delay for the given retry
// attempt (1-based): half the capped exponential step fixed, half drawn
// from the seeded RNG.
func (r *Resilient) backoff(attempt int) time.Duration {
	d := r.retry.Base << uint(attempt-1)
	if d <= 0 || d > r.retry.Cap {
		d = r.retry.Cap
	}
	half := d / 2
	return half + time.Duration(r.rng.Int63n(int64(half)+1))
}

// nonFinite scans the tuple's quantitative attributes for NaN/±Inf.
func (r *Resilient) nonFinite(t Tuple) (bool, string) {
	for _, i := range r.quantIdx {
		if v := t[i]; math.IsNaN(v) || math.IsInf(v, 0) {
			return true, "non-finite"
		}
	}
	return false, ""
}

// quarantine accounts one skipped row; the returned error is non-nil
// once the per-pass budget is exhausted.
func (r *Resilient) quarantine(reason string, row int, cause error) error {
	if reason == "" {
		reason = "row-error"
	}
	r.passBad++
	r.stats.Quarantined[reason]++
	r.quarTotalC.Inc()
	if r.reg != nil {
		c, ok := r.quarReasonC[reason]
		if !ok {
			c = r.reg.Counter("rows_quarantined_" + reason)
			r.quarReasonC[reason] = c
		}
		c.Inc()
	}
	if r.q.OnBad != nil {
		r.q.OnBad(reason, row, cause)
	}
	if r.q.MaxBadRows >= 0 && r.passBad > r.q.MaxBadRows {
		return fmt.Errorf("%w: %d quarantined this pass exceeds budget %d (last: %v)",
			ErrTooManyBadRows, r.passBad, r.q.MaxBadRows, cause)
	}
	return nil
}
