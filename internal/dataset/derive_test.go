package dataset

import (
	"strings"
	"testing"
)

// stubBinner is a fixed 3-bin equi-width binner over [0, 30).
type stubBinner struct{}

func (stubBinner) NumBins() int { return 3 }
func (stubBinner) Bin(v float64) int {
	switch {
	case v < 10:
		return 0
	case v < 20:
		return 1
	default:
		return 2
	}
}
func (stubBinner) Bounds(b int) (float64, float64) {
	return float64(b * 10), float64((b + 1) * 10)
}

type oneBinner struct{ stubBinner }

func (oneBinner) NumBins() int { return 1 }

func TestDiscretize(t *testing.T) {
	tb, err := ReadCSV(strings.NewReader("sales,region\n5,east\n15,west\n25,east\n"), nil)
	if err != nil {
		t.Fatal(err)
	}
	src, err := Discretize(tb, "sales", stubBinner{})
	if err != nil {
		t.Fatal(err)
	}
	schema := src.Schema()
	a := schema.Attr("sales")
	if a == nil || a.Kind != Categorical {
		t.Fatal("sales should become categorical")
	}
	if a.NumCategories() != 3 {
		t.Fatalf("categories = %d", a.NumCategories())
	}
	if got := a.Category(1); got != "sales[10,20)" {
		t.Errorf("bin 1 label = %q", got)
	}
	// Region dictionary must be carried over.
	if schema.Attr("region").NumCategories() != 2 {
		t.Error("region categories lost")
	}
	var codes []int
	if err := ForEach(src, func(tp Tuple) error {
		codes = append(codes, int(tp[0]))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2}
	for i := range want {
		if codes[i] != want[i] {
			t.Fatalf("codes = %v, want %v", codes, want)
		}
	}
	// Sized passthrough.
	ss, ok := src.(SizedSource)
	if !ok || ss.Len() != 3 {
		t.Error("sized source not preserved")
	}
	// Second pass after Reset.
	n, err := Count(src)
	if err != nil || n != 3 {
		t.Errorf("Count = %d, %v", n, err)
	}
}

func TestDiscretizeErrors(t *testing.T) {
	tb, _ := ReadCSV(strings.NewReader("sales,region\n5,east\n"), nil)
	if _, err := Discretize(tb, "nope", stubBinner{}); err == nil {
		t.Error("unknown attribute should error")
	}
	if _, err := Discretize(tb, "region", stubBinner{}); err == nil {
		t.Error("categorical attribute should error")
	}
	if _, err := Discretize(tb, "sales", oneBinner{}); err == nil {
		t.Error("single bin should error")
	}
}

func TestDiscretizeUnsizedSource(t *testing.T) {
	schema := NewSchema(Attribute{Name: "x", Kind: Quantitative})
	fs := NewFuncSource(schema, 4, func(i int, out Tuple) { out[0] = float64(i * 9) })
	// Hide the size by wrapping.
	src, err := Discretize(unsized{fs}, "x", stubBinner{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := src.(SizedSource); ok {
		t.Error("unsized source should stay unsized")
	}
	n, err := Count(src)
	if err != nil || n != 4 {
		t.Errorf("Count = %d, %v", n, err)
	}
}

// unsized hides a source's Len.
type unsized struct{ s Source }

func (u unsized) Schema() *Schema      { return u.s.Schema() }
func (u unsized) Next() (Tuple, error) { return u.s.Next() }
func (u unsized) Reset() error         { return u.s.Reset() }
