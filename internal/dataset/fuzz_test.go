package dataset

import (
	"strings"
	"testing"
)

// FuzzReadCSV checks that arbitrary CSV-ish input never panics the
// reader and that successful parses round-trip structurally.
func FuzzReadCSV(f *testing.F) {
	f.Add("a,b\n1,2\n")
	f.Add("age,salary,group\n30,50000,A\n45,80000,B\n")
	f.Add("x\n")
	f.Add("")
	f.Add("a,a\n1,2\n")
	f.Add("a,b\n\"quoted,comma\",3\n")
	f.Add("a\n1\nnotanumber\n")
	f.Add("héllo,wörld\n1,2\n")
	f.Fuzz(func(t *testing.T, input string) {
		tb, err := ReadCSV(strings.NewReader(input), nil)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		// Parsed tables must be internally consistent.
		schema := tb.Schema()
		for i := 0; i < tb.Len(); i++ {
			row := tb.Row(i)
			if len(row) != schema.Len() {
				t.Fatalf("row %d width %d != schema %d", i, len(row), schema.Len())
			}
			for j, v := range row {
				a := schema.At(j)
				if a.Kind == Categorical {
					code := int(v)
					if code < 0 || code >= a.NumCategories() {
						t.Fatalf("row %d col %d: category code %d out of range", i, j, code)
					}
				}
			}
		}
		// Writing back must succeed for any successfully parsed table.
		var sb strings.Builder
		if err := WriteCSV(&sb, tb); err != nil {
			t.Fatalf("WriteCSV of parsed table failed: %v", err)
		}
	})
}
