package dataset

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTempCSV(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.csv")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCSVStreamBasic(t *testing.T) {
	path := writeTempCSV(t, sampleCSV)
	schema, err := InferCSVSchema(path, 100)
	if err != nil {
		t.Fatal(err)
	}
	if schema.Attr("age").Kind != Quantitative || schema.Attr("group").Kind != Categorical {
		t.Fatal("schema inference wrong")
	}
	stream, err := OpenCSVStream(path, schema)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	n, err := Count(stream)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("Count = %d", n)
	}
	// Second pass after Reset sees the same tuples.
	var ages []float64
	if err := ForEach(stream, func(tp Tuple) error {
		ages = append(ages, tp[0])
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(ages) != 3 || ages[0] != 30 || ages[2] != 62 {
		t.Errorf("ages = %v", ages)
	}
}

func TestCSVStreamHeaderMismatch(t *testing.T) {
	path := writeTempCSV(t, sampleCSV)
	wrong := NewSchema(
		Attribute{Name: "WRONG", Kind: Quantitative},
		Attribute{Name: "salary", Kind: Quantitative},
		Attribute{Name: "group", Kind: Categorical},
	)
	if _, err := OpenCSVStream(path, wrong); err == nil {
		t.Error("header mismatch should error")
	}
	short := NewSchema(Attribute{Name: "age", Kind: Quantitative})
	if _, err := OpenCSVStream(path, short); err == nil {
		t.Error("column-count mismatch should error")
	}
	if _, err := OpenCSVStream(path, nil); err == nil {
		t.Error("nil schema should error")
	}
}

func TestCSVStreamBadData(t *testing.T) {
	path := writeTempCSV(t, "age,group\nnotanumber,A\n")
	schema := NewSchema(
		Attribute{Name: "age", Kind: Quantitative},
		Attribute{Name: "group", Kind: Categorical},
	)
	stream, err := OpenCSVStream(path, schema)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	if _, err := stream.Next(); err == nil {
		t.Error("unparsable value should error")
	}
}

func TestCSVStreamMissingFile(t *testing.T) {
	schema := NewSchema(Attribute{Name: "x", Kind: Quantitative})
	if _, err := OpenCSVStream("/nonexistent/file.csv", schema); err == nil {
		t.Error("missing file should error")
	}
	if _, err := InferCSVSchema("/nonexistent/file.csv", 10); err == nil {
		t.Error("missing file should error on inference")
	}
}

func TestCSVStreamNewCategoriesOnTheFly(t *testing.T) {
	// Inference sees only the first row; a later row introduces a new
	// label, which must be registered rather than rejected.
	path := writeTempCSV(t, "g\nA\nB\nC\n")
	schema, err := InferCSVSchema(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := OpenCSVStream(path, schema)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	n, err := Count(stream)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("Count = %d", n)
	}
	if schema.Attr("g").NumCategories() != 3 {
		t.Errorf("categories = %d, want 3", schema.Attr("g").NumCategories())
	}
}

func TestCSVStreamCloseThenReset(t *testing.T) {
	path := writeTempCSV(t, sampleCSV)
	schema, _ := InferCSVSchema(path, 10)
	stream, err := OpenCSVStream(path, schema)
	if err != nil {
		t.Fatal(err)
	}
	if err := stream.Close(); err != nil {
		t.Fatal(err)
	}
	// After Close, Next returns EOF; Reset revives the stream.
	if _, err := stream.Next(); err == nil {
		t.Error("Next after Close should not succeed")
	}
	if err := stream.Reset(); err != nil {
		t.Fatal(err)
	}
	if _, err := stream.Next(); err != nil {
		t.Errorf("Next after Reset: %v", err)
	}
	stream.Close()
}
