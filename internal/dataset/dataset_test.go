package dataset

import (
	"strings"
	"testing"
)

func TestSchemaAddAndIndex(t *testing.T) {
	s := NewSchema(
		Attribute{Name: "age", Kind: Quantitative},
		Attribute{Name: "group", Kind: Categorical},
	)
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if i := s.MustIndex("group"); i != 1 {
		t.Errorf("MustIndex(group) = %d, want 1", i)
	}
	if _, err := s.Index("nope"); err == nil {
		t.Error("Index of unknown attribute should error")
	}
	if a := s.Attr("age"); a == nil || a.Kind != Quantitative {
		t.Errorf("Attr(age) = %+v, want quantitative attribute", a)
	}
	if a := s.Attr("missing"); a != nil {
		t.Errorf("Attr(missing) = %+v, want nil", a)
	}
}

func TestSchemaDuplicateRejected(t *testing.T) {
	s := &Schema{}
	if _, err := s.Add("x", Quantitative); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Add("x", Categorical); err == nil {
		t.Error("duplicate Add should error")
	}
}

func TestCategoryDictionary(t *testing.T) {
	s := &Schema{}
	a := s.MustAdd("color", Categorical)
	red, err := a.CategoryCode("red")
	if err != nil {
		t.Fatal(err)
	}
	blue, _ := a.CategoryCode("blue")
	again, _ := a.CategoryCode("red")
	if red != again {
		t.Errorf("re-encoding red gave %d, first gave %d", again, red)
	}
	if red == blue {
		t.Error("distinct labels got the same code")
	}
	if got := a.Category(blue); got != "blue" {
		t.Errorf("Category(%d) = %q, want blue", blue, got)
	}
	if a.NumCategories() != 2 {
		t.Errorf("NumCategories = %d, want 2", a.NumCategories())
	}
	if _, ok := a.LookupCategory("green"); ok {
		t.Error("LookupCategory of unseen label should report !ok")
	}
}

func TestCategoryCodeOnQuantitative(t *testing.T) {
	s := &Schema{}
	a := s.MustAdd("age", Quantitative)
	if _, err := a.CategoryCode("x"); err == nil {
		t.Error("CategoryCode on quantitative attribute should error")
	}
}

func TestSchemaClone(t *testing.T) {
	s := &Schema{}
	a := s.MustAdd("g", Categorical)
	a.CategoryCode("A")
	c := s.Clone()
	// Mutating the clone must not affect the original.
	c.Attr("g").CategoryCode("B")
	if s.Attr("g").NumCategories() != 1 {
		t.Errorf("original schema gained categories after clone mutation")
	}
	if code, ok := c.Attr("g").LookupCategory("A"); !ok || code != 0 {
		t.Errorf("clone lost category A: code=%d ok=%v", code, ok)
	}
}

func TestKindString(t *testing.T) {
	if Quantitative.String() != "quantitative" || Categorical.String() != "categorical" {
		t.Error("Kind.String mismatch")
	}
	if got := Kind(42).String(); !strings.Contains(got, "42") {
		t.Errorf("unknown kind string %q", got)
	}
}

func TestFormatValue(t *testing.T) {
	s := &Schema{}
	s.MustAdd("age", Quantitative)
	g := s.MustAdd("grp", Categorical)
	g.CategoryCode("A")
	if got := s.FormatValue(0, 41.5); got != "41.5" {
		t.Errorf("FormatValue quantitative = %q", got)
	}
	if got := s.FormatValue(1, 0); got != "A" {
		t.Errorf("FormatValue categorical = %q", got)
	}
	if got := s.FormatValue(1, 9); !strings.Contains(got, "9") {
		t.Errorf("FormatValue out-of-range = %q", got)
	}
}

func TestQuantitativeAndCategoricalNames(t *testing.T) {
	s := NewSchema(
		Attribute{Name: "a", Kind: Quantitative},
		Attribute{Name: "b", Kind: Categorical},
		Attribute{Name: "c", Kind: Quantitative},
	)
	q := s.QuantitativeNames()
	if len(q) != 2 || q[0] != "a" || q[1] != "c" {
		t.Errorf("QuantitativeNames = %v", q)
	}
	c := s.CategoricalNames()
	if len(c) != 1 || c[0] != "b" {
		t.Errorf("CategoricalNames = %v", c)
	}
}

func TestSortedCategories(t *testing.T) {
	s := &Schema{}
	a := s.MustAdd("g", Categorical)
	a.CategoryCode("zebra")
	a.CategoryCode("ant")
	got := a.SortedCategories()
	if len(got) != 2 || got[0] != "ant" || got[1] != "zebra" {
		t.Errorf("SortedCategories = %v", got)
	}
	// Categories (code order) must be unaffected.
	if cats := a.Categories(); cats[0] != "zebra" {
		t.Errorf("Categories = %v, want code order", cats)
	}
}
