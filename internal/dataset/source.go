package dataset

import (
	"context"
	"errors"
	"fmt"
	"io"

	"arcs/internal/cancelcheck"
)

// Tuple is a single record: one encoded float64 per schema attribute.
// Quantitative attributes hold their value, categorical attributes hold
// their dictionary code.
type Tuple []float64

// Clone returns an independent copy of the tuple.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// Source is a resettable stream of tuples. Next returns io.EOF after the
// last tuple. ARCS performs a single pass per mining run but the feedback
// loop may Reset the source to verify candidate segmentations against
// fresh samples.
//
// Implementations are not required to be safe for concurrent use.
type Source interface {
	// Schema describes the tuples produced by Next.
	Schema() *Schema
	// Next returns the next tuple or io.EOF. The returned slice may be
	// reused by subsequent calls; callers that retain tuples must Clone.
	Next() (Tuple, error)
	// Reset rewinds the source to the first tuple.
	Reset() error
}

// SizedSource is implemented by sources that know their tuple count in
// advance, letting consumers preallocate.
type SizedSource interface {
	Source
	// Len reports the total number of tuples the source yields per pass.
	Len() int
}

// Sharder is implemented by sources whose pass can be partitioned into
// disjoint, independently consumable sub-streams — the contract behind
// parallel ingest. The concatenation of Shard(0, n) .. Shard(n-1, n)
// must yield exactly the tuples of one full pass, in order, and distinct
// shards must be safe to consume from distinct goroutines concurrently.
// In-memory tables shard by row range; deterministic generators shard by
// index range. Streaming sources (CSV readers) cannot shard and simply
// do not implement the interface.
type Sharder interface {
	Source
	// Shard returns the i-th of n partitions. Shards may be empty when
	// the source holds fewer than n tuples.
	Shard(i, n int) (Source, error)
}

// ErrSchemaMismatch is returned when a tuple's width does not match the
// schema it is being used with.
var ErrSchemaMismatch = errors.New("dataset: tuple width does not match schema")

// RowError marks an error confined to a single input row — a cell that
// fails to parse, a wrong field count, a non-finite value. The source
// remains usable: the next Next call yields the following row. Consumers
// that tolerate dirty input (see Resilient) skip or quarantine RowErrors;
// everything else propagates them like any other error.
type RowError struct {
	// Path is the originating file ("" for non-file sources) and Row the
	// 1-based row number including the header, so Error renders the
	// conventional file:line position.
	Path string
	Row  int
	// Reason is a short classification key ("parse", "field-count",
	// "category", "non-finite", ...) used for quarantine accounting.
	Reason string
	Err    error
}

// Error renders the file:line position ahead of the underlying cause.
func (e *RowError) Error() string {
	pos := fmt.Sprintf("row %d", e.Row)
	if e.Path != "" {
		pos = fmt.Sprintf("%s:%d", e.Path, e.Row)
	}
	return fmt.Sprintf("dataset: %s: %v", pos, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *RowError) Unwrap() error { return e.Err }

// AsRowError extracts a *RowError from err's chain, nil when absent.
func AsRowError(err error) *RowError {
	var re *RowError
	if errors.As(err, &re) {
		return re
	}
	return nil
}

// Transient marks errors worth retrying (injected I/O hiccups, flaky
// network sources). Implementations return true from Transient(); see
// IsTransient for classification.
type Transient interface{ Transient() bool }

// IsTransient reports whether any error in err's chain declares itself
// retryable via the Transient interface.
func IsTransient(err error) bool {
	for err != nil {
		if t, ok := err.(Transient); ok && t.Transient() {
			return true
		}
		err = errors.Unwrap(err)
	}
	return false
}

// ForEach streams src from the beginning and invokes fn for every tuple.
// It resets the source first, so the caller always sees a full pass.
// Iteration stops at the first error from fn.
func ForEach(src Source, fn func(Tuple) error) error {
	return ForEachContext(context.Background(), src, fn)
}

// forEachCheckEvery is the cooperative-cancellation granularity of a
// streaming pass: the context is polled once per this many tuples, so a
// canceled pass stops within a bounded slice of work without putting a
// context poll on every row.
const forEachCheckEvery = 1024

// ForEachContext is ForEach with checkpointed cancellation: the context
// is polled every forEachCheckEvery tuples and iteration stops with the
// cancellation error. A background context adds no per-row cost.
func ForEachContext(ctx context.Context, src Source, fn func(Tuple) error) error {
	if err := src.Reset(); err != nil {
		return fmt.Errorf("dataset: reset: %w", err)
	}
	point := cancelcheck.New(ctx).Point(forEachCheckEvery)
	for {
		if err := point.Check(); err != nil {
			return err
		}
		t, err := src.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(t); err != nil {
			return err
		}
	}
}

// Count consumes the source and reports the number of tuples in one pass.
func Count(src Source) (int, error) {
	if ss, ok := src.(SizedSource); ok {
		return ss.Len(), nil
	}
	n := 0
	err := ForEach(src, func(Tuple) error { n++; return nil })
	return n, err
}

// Materialize drains the source into an in-memory Table sharing the
// source's schema.
func Materialize(src Source) (*Table, error) {
	tb := NewTable(src.Schema())
	if ss, ok := src.(SizedSource); ok {
		tb.rows = make([]Tuple, 0, ss.Len())
	}
	err := ForEach(src, func(t Tuple) error {
		tb.rows = append(tb.rows, t.Clone())
		return nil
	})
	if err != nil {
		return nil, err
	}
	return tb, nil
}

// Limit wraps a source, yielding at most n tuples per pass.
func Limit(src Source, n int) Source { return &limitSource{src: src, limit: n} }

type limitSource struct {
	src   Source
	limit int
	seen  int
}

func (l *limitSource) Schema() *Schema { return l.src.Schema() }

func (l *limitSource) Next() (Tuple, error) {
	if l.seen >= l.limit {
		return nil, io.EOF
	}
	t, err := l.src.Next()
	if err != nil {
		return nil, err
	}
	l.seen++
	return t, nil
}

func (l *limitSource) Reset() error {
	l.seen = 0
	if err := l.src.Reset(); err != nil {
		return fmt.Errorf("dataset: limit reset: %w", err)
	}
	return nil
}

func (l *limitSource) Len() int {
	if ss, ok := l.src.(SizedSource); ok {
		if n := ss.Len(); n < l.limit {
			return n
		}
	}
	return l.limit
}

// Close forwards to the wrapped source when it is closeable, so wrapping
// a CSVStream in Limit does not leak the underlying file handle or
// swallow its close error.
func (l *limitSource) Close() error {
	if c, ok := l.src.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// FuncSource adapts a generator function into a Source. The function is
// called with the zero-based position of the tuple to produce; it must be
// deterministic with respect to that position so Reset replays identically.
type FuncSource struct {
	schema *Schema
	n      int
	gen    func(i int, out Tuple)
	pos    int
	buf    Tuple
}

// NewFuncSource builds a deterministic source of n tuples over schema,
// produced by gen writing into the provided buffer.
func NewFuncSource(schema *Schema, n int, gen func(i int, out Tuple)) *FuncSource {
	return &FuncSource{schema: schema, n: n, gen: gen, buf: make(Tuple, schema.Len())}
}

// Schema implements Source.
func (f *FuncSource) Schema() *Schema { return f.schema }

// Len implements SizedSource.
func (f *FuncSource) Len() int { return f.n }

// Next implements Source. The returned tuple is reused across calls.
func (f *FuncSource) Next() (Tuple, error) {
	if f.pos >= f.n {
		return nil, io.EOF
	}
	f.gen(f.pos, f.buf)
	f.pos++
	return f.buf, nil
}

// Reset implements Source.
func (f *FuncSource) Reset() error {
	f.pos = 0
	return nil
}

// Shard implements Sharder: shard i of n covers the contiguous index
// range [i*len/n, (i+1)*len/n). Each shard has a private tuple buffer;
// the generator function itself must be safe for concurrent calls when
// shards are consumed in parallel (position-determinism usually makes it
// a pure function, which is).
func (f *FuncSource) Shard(i, n int) (Source, error) {
	if n < 1 || i < 0 || i >= n {
		return nil, fmt.Errorf("dataset: shard %d of %d out of range", i, n)
	}
	lo, hi := i*f.n/n, (i+1)*f.n/n
	return NewFuncSource(f.schema, hi-lo, func(j int, out Tuple) { f.gen(lo+j, out) }), nil
}
