package dataset

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"arcs/internal/obs"
)

// flakySource yields n tuples, failing transiently on configured
// positions and permanently on others.
type flakySource struct {
	schema    *Schema
	n         int
	pos       int
	transient map[int]int // position -> remaining transient failures
	fatalAt   int         // position of a permanent error, -1 disables
	rowErrAt  int         // position of a RowError, -1 disables
	nanAt     int         // position with a NaN x value, -1 disables
	buf       Tuple
}

type transientErr struct{ msg string }

func (e transientErr) Error() string   { return e.msg }
func (e transientErr) Transient() bool { return true }

func newFlakySchema(t *testing.T) *Schema {
	t.Helper()
	schema := NewSchema(
		Attribute{Name: "x", Kind: Quantitative},
		Attribute{Name: "g", Kind: Categorical},
	)
	if _, err := schema.At(1).CategoryCode("A"); err != nil {
		t.Fatal(err)
	}
	return schema
}

func newFlaky(schema *Schema, n int) *flakySource {
	return &flakySource{schema: schema, n: n, transient: map[int]int{},
		fatalAt: -1, rowErrAt: -1, nanAt: -1, buf: make(Tuple, 2)}
}

func (f *flakySource) Schema() *Schema { return f.schema }
func (f *flakySource) Reset() error    { f.pos = 0; return nil }

func (f *flakySource) Next() (Tuple, error) {
	if f.pos >= f.n {
		return nil, io.EOF
	}
	if left := f.transient[f.pos]; left > 0 {
		f.transient[f.pos] = left - 1
		return nil, transientErr{fmt.Sprintf("transient at %d", f.pos)}
	}
	i := f.pos
	f.pos++
	switch i {
	case f.fatalAt:
		return nil, errors.New("disk on fire")
	case f.rowErrAt:
		return nil, &RowError{Row: i + 1, Reason: "parse", Err: errors.New("bad cell")}
	}
	f.buf[0] = float64(i)
	if i == f.nanAt {
		f.buf[0] = math.NaN()
	}
	f.buf[1] = 0
	return f.buf, nil
}

func noSleepRetry(max int) Retry {
	return Retry{Max: max, Base: time.Microsecond, Sleep: func(time.Duration) {}}
}

func TestResilientRetriesTransient(t *testing.T) {
	src := newFlaky(newFlakySchema(t), 10)
	src.transient[3] = 2
	r := NewResilient(src, noSleepRetry(3), Quarantine{})
	n, err := Count(r)
	if err != nil || n != 10 {
		t.Fatalf("Count = %d, %v; want 10, nil", n, err)
	}
	if st := r.Stats(); st.Retries != 2 {
		t.Errorf("retries = %d, want 2", st.Retries)
	}
}

func TestResilientRetryBudgetExhausted(t *testing.T) {
	src := newFlaky(newFlakySchema(t), 10)
	src.transient[3] = 5
	r := NewResilient(src, noSleepRetry(2), Quarantine{})
	_, err := Count(r)
	if err == nil || !IsTransient(err) {
		t.Fatalf("want transient error after retries, got %v", err)
	}
}

func TestResilientQuarantinesRowErrorsAndNaN(t *testing.T) {
	src := newFlaky(newFlakySchema(t), 10)
	src.rowErrAt = 2
	src.nanAt = 5
	reg := obs.NewRegistry()
	r := NewResilient(src, Retry{}, Quarantine{MaxBadRows: 5})
	r.Observe(reg)
	n, err := Count(r)
	if err != nil || n != 8 {
		t.Fatalf("Count = %d, %v; want 8, nil", n, err)
	}
	st := r.Stats()
	if st.Quarantined["parse"] != 1 || st.Quarantined["non-finite"] != 1 {
		t.Errorf("quarantine reasons = %v", st.Quarantined)
	}
	if got := reg.Counter("rows_quarantined_total").Value(); got != 2 {
		t.Errorf("rows_quarantined_total = %d, want 2", got)
	}
	if got := reg.Counter("rows_quarantined_non-finite").Value(); got != 1 {
		t.Errorf("rows_quarantined_non-finite = %d, want 1", got)
	}
}

func TestResilientBadRowBudget(t *testing.T) {
	src := newFlaky(newFlakySchema(t), 10)
	src.rowErrAt = 2
	r := NewResilient(src, Retry{}, Quarantine{MaxBadRows: 0})
	_, err := Count(r)
	if !errors.Is(err, ErrTooManyBadRows) {
		t.Fatalf("want ErrTooManyBadRows, got %v", err)
	}
}

func TestResilientBudgetIsPerPass(t *testing.T) {
	src := newFlaky(newFlakySchema(t), 10)
	src.rowErrAt = 2
	r := NewResilient(src, Retry{}, Quarantine{MaxBadRows: 1})
	for pass := 0; pass < 3; pass++ {
		if _, err := Count(r); err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
	}
	if st := r.Stats(); st.Total() != 3 {
		t.Errorf("cumulative quarantined = %d, want 3", st.Total())
	}
}

func TestResilientFatalErrorsPropagate(t *testing.T) {
	src := newFlaky(newFlakySchema(t), 10)
	src.fatalAt = 4
	r := NewResilient(src, noSleepRetry(3), Quarantine{MaxBadRows: -1})
	_, err := Count(r)
	if err == nil || IsTransient(err) || errors.Is(err, ErrTooManyBadRows) {
		t.Fatalf("fatal error should propagate unchanged, got %v", err)
	}
}

func TestForEachContextCancel(t *testing.T) {
	src := newFlaky(newFlakySchema(t), 100_000)
	ctx, cancel := context.WithCancel(context.Background())
	rows := 0
	err := ForEachContext(ctx, src, func(Tuple) error {
		rows++
		if rows == 10 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// Cancellation is checkpointed: the pass stops within one checkpoint
	// interval of the cancel, not at the very next row.
	if rows > 10+forEachCheckEvery {
		t.Errorf("pass ran %d rows past cancel, granularity is %d", rows-10, forEachCheckEvery)
	}
}

func TestCSVStreamRowErrors(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dirty.csv")
	content := "x,g\n1,A\nnot-a-number,A\n3,A\n4,B,extra\n5,B\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	// Infer from the clean first row only: sampling the dirty rows would
	// (correctly) flip x to categorical and hide the parse errors.
	schema, err := InferCSVSchema(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := OpenCSVStream(path, schema)
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()

	var rowErrs []*RowError
	var vals []float64
	for {
		tp, err := cs.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			re := AsRowError(err)
			if re == nil {
				t.Fatalf("non-row error from dirty row: %v", err)
			}
			rowErrs = append(rowErrs, re)
			continue
		}
		vals = append(vals, tp[0])
	}
	if len(vals) != 3 {
		t.Fatalf("clean rows = %v, want [1 3 5]", vals)
	}
	if len(rowErrs) != 2 {
		t.Fatalf("row errors = %d, want 2", len(rowErrs))
	}
	if rowErrs[0].Reason != "parse" || rowErrs[0].Row != 3 || rowErrs[0].Path != path {
		t.Errorf("first row error = %+v, want parse at %s:3", rowErrs[0], path)
	}
	if rowErrs[1].Reason != "field-count" {
		t.Errorf("second row error reason = %q, want field-count", rowErrs[1].Reason)
	}
	if want := fmt.Sprintf("%s:3", path); !contains(rowErrs[0].Error(), want) {
		t.Errorf("error %q should carry file:line %q", rowErrs[0].Error(), want)
	}
}

func TestResilientOverCSVStream(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dirty.csv")
	content := "x,g\n1,A\nnot-a-number,A\n3,A\nNaN,B\n5,B\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	schema, err := InferCSVSchema(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := OpenCSVStream(path, schema)
	if err != nil {
		t.Fatal(err)
	}
	r := NewResilient(cs, Retry{}, Quarantine{MaxBadRows: 10})
	defer r.Close()
	tb, err := Materialize(r)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 3 {
		t.Errorf("clean rows = %d, want 3", tb.Len())
	}
	st := r.Stats()
	if st.Quarantined["parse"] != 1 || st.Quarantined["non-finite"] != 1 {
		t.Errorf("quarantined = %v", st.Quarantined)
	}
}

func TestLimitForwardsClose(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ok.csv")
	if err := os.WriteFile(path, []byte("x,g\n1,A\n2,B\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	schema, err := InferCSVSchema(path, 10)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := OpenCSVStream(path, schema)
	if err != nil {
		t.Fatal(err)
	}
	lim := Limit(cs, 1)
	if n, err := Count(lim); err != nil || n != 1 {
		t.Fatalf("Count = %d, %v", n, err)
	}
	closer, ok := lim.(interface{ Close() error })
	if !ok {
		t.Fatal("Limit over a closeable source should forward Close")
	}
	if err := closer.Close(); err != nil {
		t.Fatal(err)
	}
	// The underlying stream is closed: Next without Reset reports EOF.
	if _, err := cs.Next(); err != io.EOF {
		t.Errorf("closed stream Next = %v, want EOF", err)
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }
