package dataset

import (
	"bytes"
	"strings"
	"testing"
)

const sampleCSV = `age,salary,group
30,50000,A
45,80000,B
62,30000,A
`

func TestReadCSVInferred(t *testing.T) {
	tb, err := ReadCSV(strings.NewReader(sampleCSV), nil)
	if err != nil {
		t.Fatal(err)
	}
	s := tb.Schema()
	if s.Attr("age").Kind != Quantitative {
		t.Error("age should be inferred quantitative")
	}
	if s.Attr("group").Kind != Categorical {
		t.Error("group should be inferred categorical")
	}
	if tb.Len() != 3 {
		t.Fatalf("Len = %d", tb.Len())
	}
	gi := s.MustIndex("group")
	if got := s.FormatValue(gi, tb.Row(1)[gi]); got != "B" {
		t.Errorf("row 1 group = %q, want B", got)
	}
}

func TestReadCSVWithSchema(t *testing.T) {
	s := demoSchema()
	tb, err := ReadCSV(strings.NewReader(sampleCSV), s)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 3 || tb.Schema() != s {
		t.Fatalf("Len=%d schema shared=%v", tb.Len(), tb.Schema() == s)
	}
}

func TestReadCSVSchemaMismatch(t *testing.T) {
	s := NewSchema(Attribute{Name: "only", Kind: Quantitative})
	if _, err := ReadCSV(strings.NewReader(sampleCSV), s); err == nil {
		t.Error("column-count mismatch should error")
	}
	s2 := NewSchema(
		Attribute{Name: "age", Kind: Quantitative},
		Attribute{Name: "WRONG", Kind: Quantitative},
		Attribute{Name: "group", Kind: Categorical},
	)
	if _, err := ReadCSV(strings.NewReader(sampleCSV), s2); err == nil {
		t.Error("column-name mismatch should error")
	}
}

func TestReadCSVBadNumber(t *testing.T) {
	s := demoSchema()
	bad := "age,salary,group\nthirty,50000,A\n"
	if _, err := ReadCSV(strings.NewReader(bad), s); err == nil {
		t.Error("unparsable quantitative value should error")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tb, err := ReadCSV(strings.NewReader(sampleCSV), nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tb); err != nil {
		t.Fatal(err)
	}
	tb2, err := ReadCSV(bytes.NewReader(buf.Bytes()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if tb2.Len() != tb.Len() {
		t.Fatalf("round trip lost rows: %d vs %d", tb2.Len(), tb.Len())
	}
	for i := 0; i < tb.Len(); i++ {
		for j := 0; j < tb.Schema().Len(); j++ {
			a := tb.Schema().FormatValue(j, tb.Row(i)[j])
			b := tb2.Schema().FormatValue(j, tb2.Row(i)[j])
			if a != b {
				t.Errorf("row %d col %d: %q vs %q", i, j, a, b)
			}
		}
	}
}

func TestInferSchemaDuplicateHeader(t *testing.T) {
	csv := "x,x\n1,2\n"
	tb, err := ReadCSV(strings.NewReader(csv), nil)
	if err != nil {
		t.Fatal(err)
	}
	names := tb.Schema().Names()
	if names[0] == names[1] {
		t.Errorf("duplicate headers not disambiguated: %v", names)
	}
}

func TestReadCSVEmptyBody(t *testing.T) {
	tb, err := ReadCSV(strings.NewReader("a,b\n"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 0 {
		t.Errorf("Len = %d, want 0", tb.Len())
	}
	// Columns with no data are inferred categorical (no evidence of numbers).
	if tb.Schema().Attr("a").Kind != Categorical {
		t.Error("empty column should infer categorical")
	}
}
