package dataset

import (
	"fmt"
	"io"
)

// Table is an in-memory, row-major collection of tuples with a schema.
// It implements SizedSource, so it can be used anywhere a stream is
// expected, and supports random access for sampling and classification.
type Table struct {
	schema *Schema
	rows   []Tuple
	cursor int
}

// NewTable creates an empty table over schema.
func NewTable(schema *Schema) *Table {
	return &Table{schema: schema}
}

// Schema implements Source.
func (t *Table) Schema() *Schema { return t.schema }

// Len implements SizedSource.
func (t *Table) Len() int { return len(t.rows) }

// Row returns the i-th tuple. The tuple is not copied; callers must not
// modify it unless they own the table.
func (t *Table) Row(i int) Tuple { return t.rows[i] }

// Append adds a tuple to the table. The tuple is stored directly (not
// copied); pass Clone()d tuples when the buffer is reused.
func (t *Table) Append(tp Tuple) error {
	if len(tp) != t.schema.Len() {
		return fmt.Errorf("%w: tuple has %d values, schema has %d attributes",
			ErrSchemaMismatch, len(tp), t.schema.Len())
	}
	t.rows = append(t.rows, tp)
	return nil
}

// MustAppend is Append but panics on width mismatch.
func (t *Table) MustAppend(tp Tuple) {
	if err := t.Append(tp); err != nil {
		panic(err)
	}
}

// AppendValues encodes a record given in schema order, where categorical
// attributes are passed as labels and quantitative attributes as float64,
// int or string parsable values are NOT supported — use the CSV reader for
// textual input. Accepted types per attribute: float64/int for
// quantitative, string for categorical.
func (t *Table) AppendValues(values ...interface{}) error {
	if len(values) != t.schema.Len() {
		return fmt.Errorf("%w: %d values for %d attributes", ErrSchemaMismatch, len(values), t.schema.Len())
	}
	tp := make(Tuple, len(values))
	for i, v := range values {
		a := t.schema.At(i)
		switch a.Kind {
		case Quantitative:
			switch x := v.(type) {
			case float64:
				tp[i] = x
			case int:
				tp[i] = float64(x)
			default:
				return fmt.Errorf("dataset: attribute %q is quantitative; got %T", a.Name, v)
			}
		case Categorical:
			label, ok := v.(string)
			if !ok {
				return fmt.Errorf("dataset: attribute %q is categorical; got %T", a.Name, v)
			}
			code, err := a.CategoryCode(label)
			if err != nil {
				return err
			}
			tp[i] = float64(code)
		}
	}
	t.rows = append(t.rows, tp)
	return nil
}

// Next implements Source.
func (t *Table) Next() (Tuple, error) {
	if t.cursor >= len(t.rows) {
		return nil, io.EOF
	}
	r := t.rows[t.cursor]
	t.cursor++
	return r, nil
}

// Reset implements Source.
func (t *Table) Reset() error {
	t.cursor = 0
	return nil
}

// Column extracts attribute i of every row into a fresh slice.
func (t *Table) Column(i int) []float64 {
	out := make([]float64, len(t.rows))
	for r, row := range t.rows {
		out[r] = row[i]
	}
	return out
}

// Slice returns a new table that shares rows[lo:hi] with t. The tables
// share underlying tuples; mutations are visible through both.
func (t *Table) Slice(lo, hi int) *Table {
	return &Table{schema: t.schema, rows: t.rows[lo:hi]}
}

// Shard implements Sharder: shard i of n is the contiguous row range
// [i*len/n, (i+1)*len/n) as an independent table view. Shards share
// tuple storage but each has its own cursor, so concurrent consumption
// from distinct goroutines is safe as long as nobody mutates the rows.
func (t *Table) Shard(i, n int) (Source, error) {
	if n < 1 || i < 0 || i >= n {
		return nil, fmt.Errorf("dataset: shard %d of %d out of range", i, n)
	}
	return t.Slice(i*len(t.rows)/n, (i+1)*len(t.rows)/n), nil
}

// Select returns a new table containing the rows at the given indices,
// sharing tuple storage with t.
func (t *Table) Select(idx []int) *Table {
	rows := make([]Tuple, len(idx))
	for i, j := range idx {
		rows[i] = t.rows[j]
	}
	return &Table{schema: t.schema, rows: rows}
}

// Filter returns a new table with the rows for which keep returns true,
// sharing tuple storage with t.
func (t *Table) Filter(keep func(Tuple) bool) *Table {
	var rows []Tuple
	for _, r := range t.rows {
		if keep(r) {
			rows = append(rows, r)
		}
	}
	return &Table{schema: t.schema, rows: rows}
}
