package c45

import "math"

// upperErrorBound is C4.5's pessimistic error estimate: the one-sided
// upper confidence bound (at confidence factor CF) on the true error
// probability of a leaf that mislabels e of n training tuples, times n.
//
// Like the original C4.5, it inverts the exact binomial distribution
// (the Clopper-Pearson upper limit): the largest p with
// P(Bin(n, p) <= e) >= CF. The normal approximation is badly wrong for
// the small leaves where pruning decisions actually happen — e.g.
// U(0, 2) is 0.50 errors exactly but only ~0.21 under the approximation
// — and an approximate bound leaves noisy trees almost unpruned.
func upperErrorBound(e, n, cf float64) float64 {
	if n <= 0 {
		return 0
	}
	if cf <= 0 {
		return n
	}
	if cf >= 1 {
		return e
	}
	eInt := int(math.Floor(e + 1e-9))
	// Closed form for zero observed errors: P(X = 0) = (1-p)^n = CF.
	if eInt <= 0 {
		return n * (1 - math.Pow(cf, 1/n))
	}
	if e >= n {
		return n
	}
	// Large nodes: the normal approximation is accurate and the exact
	// CDF would sum e+1 terms per bisection step. Pruning decisions are
	// driven by small leaves, where we stay exact.
	if n > 400 {
		z := zForCF(cf)
		f := e / n
		num := f + z*z/(2*n) + z*math.Sqrt(f/n-f*f/n+z*z/(4*n*n))
		den := 1 + z*z/n
		return num / den * n
	}
	lo, hi := e/n, 1.0
	for iter := 0; iter < 50; iter++ {
		p := (lo + hi) / 2
		if binomialCDF(eInt, n, p) >= cf {
			lo = p
		} else {
			hi = p
		}
	}
	return n * (lo + hi) / 2
}

// binomialCDF computes P(Bin(n, p) <= e) in log space, term by term.
func binomialCDF(e int, n, p float64) float64 {
	if p <= 0 {
		return 1
	}
	if p >= 1 {
		return 0
	}
	logP, logQ := math.Log(p), math.Log1p(-p)
	var sum float64
	// log C(n, i) built incrementally: C(n,0)=1; C(n,i)=C(n,i-1)*(n-i+1)/i.
	logC := 0.0
	for i := 0; i <= e; i++ {
		if i > 0 {
			logC += math.Log((n - float64(i) + 1) / float64(i))
		}
		sum += math.Exp(logC + float64(i)*logP + (n-float64(i))*logQ)
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// zForCF converts a one-sided confidence factor into the corresponding
// standard normal quantile z such that P(Z > z) = cf, via a rational
// approximation of the inverse normal CDF (Abramowitz & Stegun 26.2.23).
func zForCF(cf float64) float64 {
	if cf <= 0 {
		return 8 // effectively infinite pessimism
	}
	if cf >= 0.5 {
		return 0
	}
	t := math.Sqrt(-2 * math.Log(cf))
	return t - (2.515517+0.802853*t+0.010328*t*t)/
		(1+1.432788*t+0.189269*t*t+0.001308*t*t*t)
}

// prune applies pessimistic subtree replacement bottom-up: an internal
// node becomes a leaf when the pessimistic error of the collapsed leaf
// does not exceed the summed pessimistic errors of its children. It
// returns the number of internal nodes collapsed.
func (t *Tree) prune(nd *Node) int {
	if nd.IsLeaf() {
		return 0
	}
	collapsed := 0
	for _, ch := range nd.Children {
		collapsed += t.prune(ch)
	}
	subtree := t.subtreeUpperError(nd)
	asLeaf := upperErrorBound(nd.trainErrors(), nd.n(), t.cfg.CF)
	if asLeaf <= subtree+1e-9 {
		nd.Attr = -1
		nd.Categorical = false
		nd.Children = nil
		collapsed++
	}
	return collapsed
}

// subtreeUpperError sums the pessimistic errors of the subtree's leaves.
func (t *Tree) subtreeUpperError(nd *Node) float64 {
	if nd.IsLeaf() {
		return upperErrorBound(nd.trainErrors(), nd.n(), t.cfg.CF)
	}
	var s float64
	for _, ch := range nd.Children {
		s += t.subtreeUpperError(ch)
	}
	return s
}
