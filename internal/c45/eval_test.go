package c45

import (
	"math"
	"strings"
	"testing"

	"arcs/internal/dataset"
	"arcs/internal/synth"
)

func TestConfusionMatrix(t *testing.T) {
	tb := andTable(t, 64)
	tree, err := Train(tb, "class", Config{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Confusion(tree, tb, "class")
	if err != nil {
		t.Fatal(err)
	}
	if m.Total() != 64 {
		t.Errorf("Total = %d", m.Total())
	}
	if m.Accuracy() != 1 {
		t.Errorf("Accuracy = %v on perfectly learnable data", m.Accuracy())
	}
	// Perfect classifier: precision and recall 1 for both classes.
	for class := 0; class < 2; class++ {
		if m.Precision(class) != 1 || m.Recall(class) != 1 {
			t.Errorf("class %d: precision=%v recall=%v", class, m.Precision(class), m.Recall(class))
		}
	}
	s := m.String()
	if !strings.Contains(s, "actual") || !strings.Contains(s, "0") {
		t.Errorf("String = %q", s)
	}
}

func TestConfusionErrors(t *testing.T) {
	tb := andTable(t, 16)
	tree, _ := Train(tb, "class", Config{})
	if _, err := Confusion(tree, tb, "nope"); err == nil {
		t.Error("unknown class attribute should error")
	}
}

func TestConfusionImbalanced(t *testing.T) {
	// A constant classifier on imbalanced data: accuracy equals the
	// majority fraction, minority recall 0.
	s := &dataset.Schema{}
	s.MustAdd("x", dataset.Quantitative)
	cls := s.MustAdd("class", dataset.Categorical)
	cls.CategoryCode("maj")
	cls.CategoryCode("min")
	tb := dataset.NewTable(s)
	for i := 0; i < 9; i++ {
		tb.MustAppend(dataset.Tuple{float64(i), 0})
	}
	tb.MustAppend(dataset.Tuple{99, 1})
	m, err := Confusion(constantClassifier(0), tb, "class")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Accuracy()-0.9) > 1e-12 {
		t.Errorf("Accuracy = %v", m.Accuracy())
	}
	if m.Recall(1) != 0 {
		t.Errorf("minority recall = %v", m.Recall(1))
	}
	if math.Abs(m.Precision(0)-0.9) > 1e-12 {
		t.Errorf("majority precision = %v", m.Precision(0))
	}
}

type constantClassifier int

func (c constantClassifier) Classify(dataset.Tuple) int { return int(c) }

func TestCrossValidate(t *testing.T) {
	gen, _ := synth.New(synth.Config{Function: 2, N: 9_000, Seed: 5, FracA: 0.4})
	tb, err := dataset.Materialize(gen)
	if err != nil {
		t.Fatal(err)
	}
	errs, err := CrossValidate(tb, synth.AttrGroup, Config{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(errs) != 3 {
		t.Fatalf("folds = %d", len(errs))
	}
	for i, e := range errs {
		if e < 0 || e > 0.2 {
			t.Errorf("fold %d error = %v; F2 should be learnable", i, e)
		}
	}
}

func TestCrossValidateErrors(t *testing.T) {
	tb := andTable(t, 16)
	if _, err := CrossValidate(tb, "class", Config{}, 1); err == nil {
		t.Error("k=1 should error")
	}
	tiny := andTable(t, 4)
	if _, err := CrossValidate(tiny, "class", Config{}, 8); err == nil {
		t.Error("more folds than tuples should error")
	}
}

func TestRenderTree(t *testing.T) {
	tb := andTable(t, 64)
	tree, err := Train(tb, "class", Config{})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tree.Render(&sb, 0); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"a = ", "b = ", "(", "|   "} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Depth truncation.
	sb.Reset()
	if err := tree.Render(&sb, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "...") {
		t.Errorf("depth-1 render missing truncation:\n%s", sb.String())
	}
	// A pure leaf tree renders as a single line.
	s := &dataset.Schema{}
	s.MustAdd("x", dataset.Quantitative)
	cls := s.MustAdd("class", dataset.Categorical)
	cls.CategoryCode("only")
	cls.CategoryCode("pad")
	leafTB := dataset.NewTable(s)
	for i := 0; i < 5; i++ {
		leafTB.MustAppend(dataset.Tuple{float64(i), 0})
	}
	leafTree, err := Train(leafTB, "class", Config{})
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := leafTree.Render(&sb, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "only (5.0)") {
		t.Errorf("leaf render = %q", sb.String())
	}
}
