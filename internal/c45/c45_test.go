package c45

import (
	"math"
	"testing"

	"arcs/internal/dataset"
	"arcs/internal/synth"
)

// andTable builds a small categorical dataset with class = a AND b.
// (XOR is deliberately not used: with zero marginal gain per attribute,
// greedy gain-based induction — like the real C4.5 — cannot split on it.)
func andTable(t *testing.T, n int) *dataset.Table {
	t.Helper()
	s := &dataset.Schema{}
	a := s.MustAdd("a", dataset.Categorical)
	b := s.MustAdd("b", dataset.Categorical)
	cls := s.MustAdd("class", dataset.Categorical)
	for _, v := range []string{"0", "1"} {
		a.CategoryCode(v)
		b.CategoryCode(v)
		cls.CategoryCode(v)
	}
	tb := dataset.NewTable(s)
	for i := 0; i < n; i++ {
		av := float64(i % 2)
		bv := float64((i / 2) % 2)
		cv := float64(int(av) & int(bv))
		tb.MustAppend(dataset.Tuple{av, bv, cv})
	}
	return tb
}

func f2Table(t *testing.T, n int, outliers float64) *dataset.Table {
	t.Helper()
	gen, err := synth.New(synth.Config{
		Function: 2, N: n, Seed: 21,
		Perturbation: 0.05, OutlierFraction: outliers, FracA: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	tb, err := dataset.Materialize(gen)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestTrainValidation(t *testing.T) {
	tb := andTable(t, 16)
	if _, err := Train(tb, "nope", Config{}); err == nil {
		t.Error("unknown class attribute should error")
	}
	empty := dataset.NewTable(tb.Schema())
	if _, err := Train(empty, "class", Config{}); err == nil {
		t.Error("empty table should error")
	}
	// Quantitative class attribute.
	s2 := &dataset.Schema{}
	s2.MustAdd("x", dataset.Quantitative)
	s2.MustAdd("y", dataset.Quantitative)
	tb2 := dataset.NewTable(s2)
	tb2.MustAppend(dataset.Tuple{1, 2})
	if _, err := Train(tb2, "y", Config{}); err == nil {
		t.Error("quantitative class should error")
	}
}

func TestLearnsConjunction(t *testing.T) {
	tb := andTable(t, 64)
	tree, err := Train(tb, "class", Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.ErrorRate(tb); got != 0 {
		t.Errorf("training error on a AND b = %v, want 0", got)
	}
	if tree.Depth() < 2 {
		t.Errorf("a AND b needs depth >= 2, got %d", tree.Depth())
	}
}

func TestLearnsContinuousThreshold(t *testing.T) {
	// class = (x > 5), learnable with one split.
	s := &dataset.Schema{}
	s.MustAdd("x", dataset.Quantitative)
	cls := s.MustAdd("class", dataset.Categorical)
	cls.CategoryCode("lo")
	cls.CategoryCode("hi")
	tb := dataset.NewTable(s)
	for i := 0; i < 100; i++ {
		x := float64(i) / 10
		c := 0.0
		if x > 5 {
			c = 1
		}
		tb.MustAppend(dataset.Tuple{x, c})
	}
	tree, err := Train(tb, "class", Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.ErrorRate(tb); got != 0 {
		t.Errorf("training error = %v", got)
	}
	if tree.Root.IsLeaf() || tree.Root.Categorical {
		t.Fatal("root should be a continuous split")
	}
	if math.Abs(tree.Root.Threshold-5.05) > 0.2 {
		t.Errorf("threshold = %v, want ~5.05", tree.Root.Threshold)
	}
	// Classification on fresh values.
	if tree.Classify(dataset.Tuple{2, 0}) != 0 || tree.Classify(dataset.Tuple{9, 0}) != 1 {
		t.Error("classification wrong")
	}
}

func TestLearnsFunction2(t *testing.T) {
	train := f2Table(t, 5_000, 0)
	test := f2Table(t, 2_000, 0)
	tree, err := Train(train, synth.AttrGroup, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Raw tree error on F2 is seed-sensitive: the function contains an
	// XOR-like quadrant (age 60 × salary 75k) where greedy single-split
	// induction may stall or fragment. The generalized rule set — what
	// the paper's evaluation compares — must be accurate regardless.
	// At this small training size the variance is large; the experiment
	// suite asserts the tight paper-scale behaviour (3-4% rule error at
	// 20k tuples).
	if got := tree.ErrorRate(test); got > 0.25 {
		t.Errorf("F2 tree test error = %.3f, want < 0.25", got)
	}
	rs := tree.ExtractRules(train)
	if got := rs.ErrorRate(test); got > 0.2 {
		t.Errorf("F2 rule-set test error = %.3f, want < 0.2", got)
	}
	if tree.NumLeaves() < 4 {
		t.Errorf("tree with %d leaves is too simple for F2", tree.NumLeaves())
	}
}

func TestPruningShrinksTree(t *testing.T) {
	// Noisy data: pruning should reduce leaves without large error cost.
	train := f2Table(t, 4_000, 0.15)
	unpruned, err := Train(train, synth.AttrGroup, Config{CF: -1})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := Train(train, synth.AttrGroup, Config{CF: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.NumLeaves() > unpruned.NumLeaves() {
		t.Errorf("pruned tree has more leaves (%d) than unpruned (%d)",
			pruned.NumLeaves(), unpruned.NumLeaves())
	}
	test := f2Table(t, 2_000, 0.15)
	// Compare the generalized rule sets: tree-level error is noisy on
	// this data (see TestLearnsFunction2), but pruning must not wreck
	// the final classifier.
	ep := pruned.ExtractRules(train).ErrorRate(test)
	eu := unpruned.ExtractRules(train).ErrorRate(test)
	if ep > eu+0.08 {
		t.Errorf("pruning degraded rule error too much: %.3f vs %.3f", ep, eu)
	}
}

func TestUpperErrorBound(t *testing.T) {
	// Zero observed errors still yield a positive pessimistic estimate.
	if got := upperErrorBound(0, 10, 0.25); got <= 0 {
		t.Errorf("U(0, 10) = %v, want > 0", got)
	}
	// More pessimism (smaller CF) gives a larger bound.
	lo := upperErrorBound(2, 20, 0.25)
	hi := upperErrorBound(2, 20, 0.05)
	if hi <= lo {
		t.Errorf("CF 0.05 bound (%v) should exceed CF 0.25 bound (%v)", hi, lo)
	}
	// Bound grows with observed errors.
	if upperErrorBound(5, 20, 0.25) <= upperErrorBound(1, 20, 0.25) {
		t.Error("bound should grow with errors")
	}
	if upperErrorBound(0, 0, 0.25) != 0 {
		t.Error("empty node bound should be 0")
	}
}

func TestZForCF(t *testing.T) {
	// qnorm(0.75) ~ 0.6745.
	if got := zForCF(0.25); math.Abs(got-0.6745) > 0.01 {
		t.Errorf("z(0.25) = %v, want ~0.6745", got)
	}
	if got := zForCF(0.5); got != 0 {
		t.Errorf("z(0.5) = %v, want 0", got)
	}
	if got := zForCF(0); got < 5 {
		t.Errorf("z(0) = %v, want large", got)
	}
}

func TestExtractRules(t *testing.T) {
	train := f2Table(t, 5_000, 0)
	tree, err := Train(train, synth.AttrGroup, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rs := tree.ExtractRules(train)
	if len(rs.Rules) == 0 {
		t.Fatal("no rules extracted")
	}
	// The rule set should classify about as well as the tree.
	test := f2Table(t, 2_000, 0)
	treeErr := tree.ErrorRate(test)
	ruleErr := rs.ErrorRate(test)
	if ruleErr > treeErr+0.06 {
		t.Errorf("rule set error %.3f much worse than tree %.3f", ruleErr, treeErr)
	}
	// Generalization should leave fewer or equal rules than leaves.
	if len(rs.Rules) > tree.NumLeaves() {
		t.Errorf("%d rules from %d leaves", len(rs.Rules), tree.NumLeaves())
	}
	strs := rs.Strings()
	if len(strs) != len(rs.Rules)+1 {
		t.Errorf("Strings() returned %d lines for %d rules", len(strs), len(rs.Rules))
	}
}

func TestRuleMatchesSemantics(t *testing.T) {
	r := Rule{Conds: []Cond{
		{Attr: 0, Le: true, Threshold: 5},
		{Attr: 1, Categorical: true, Cat: 2},
	}, Class: 1}
	if !r.Matches(dataset.Tuple{4, 2}) {
		t.Error("should match")
	}
	if r.Matches(dataset.Tuple{6, 2}) {
		t.Error("x > threshold should not match")
	}
	if r.Matches(dataset.Tuple{4, 1}) {
		t.Error("wrong category should not match")
	}
	gt := Rule{Conds: []Cond{{Attr: 0, Le: false, Threshold: 5}}}
	if !gt.Matches(dataset.Tuple{6}) || gt.Matches(dataset.Tuple{5}) {
		t.Error("> condition semantics wrong")
	}
}

func TestRuleSetDefaultClass(t *testing.T) {
	tb := andTable(t, 64)
	tree, err := Train(tb, "class", Config{})
	if err != nil {
		t.Fatal(err)
	}
	rs := tree.ExtractRules(tb)
	// The default must be a valid class code.
	if rs.Default != 0 && rs.Default != 1 {
		t.Errorf("default class = %d", rs.Default)
	}
	// RuleSet classification on all conjunction inputs should be perfect.
	wrong := 0
	for i := 0; i < tb.Len(); i++ {
		row := tb.Row(i)
		if rs.Classify(row) != int(row[2]) {
			wrong++
		}
	}
	if wrong > 0 {
		t.Errorf("rule set misclassifies %d/64 tuples", wrong)
	}
}

func TestMinLeafRespected(t *testing.T) {
	train := f2Table(t, 1_000, 0)
	big, err := Train(train, synth.AttrGroup, Config{MinLeaf: 100, CF: -1})
	if err != nil {
		t.Fatal(err)
	}
	small, err := Train(train, synth.AttrGroup, Config{MinLeaf: 2, CF: -1})
	if err != nil {
		t.Fatal(err)
	}
	if big.NumLeaves() >= small.NumLeaves() {
		t.Errorf("MinLeaf 100 gave %d leaves vs %d with MinLeaf 2",
			big.NumLeaves(), small.NumLeaves())
	}
}

func TestMaxDepth(t *testing.T) {
	train := f2Table(t, 2_000, 0)
	tree, err := Train(train, synth.AttrGroup, Config{MaxDepth: 2, CF: -1})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() > 2 {
		t.Errorf("depth %d exceeds MaxDepth 2", tree.Depth())
	}
}

func TestPureNodeIsLeaf(t *testing.T) {
	s := &dataset.Schema{}
	s.MustAdd("x", dataset.Quantitative)
	cls := s.MustAdd("class", dataset.Categorical)
	cls.CategoryCode("only")
	cls.CategoryCode("unused")
	tb := dataset.NewTable(s)
	for i := 0; i < 10; i++ {
		tb.MustAppend(dataset.Tuple{float64(i), 0})
	}
	tree, err := Train(tb, "class", Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Root.IsLeaf() {
		t.Error("pure training set should give a single leaf")
	}
}
