package c45

import (
	"fmt"
	"io"
)

// Render writes the tree in C4.5's indented text form, e.g.
//
//	salary <= 50024.5:
//	|   age <= 60: other (755.0)
//	|   age > 60: A (394.0)
//	salary > 50024.5: ...
//
// Leaves show the majority class and the training tuple count. maxDepth
// truncates deep subtrees (rendered as "..."); zero means unlimited.
func (t *Tree) Render(w io.Writer, maxDepth int) error {
	return t.render(w, t.Root, "", maxDepth)
}

func (t *Tree) render(w io.Writer, nd *Node, indent string, depthLeft int) error {
	if nd.IsLeaf() {
		_, err := fmt.Fprintf(w, "%s%s (%.1f)\n",
			indent, t.schema.At(t.classIdx).Category(nd.Class), nd.n())
		return err
	}
	if depthLeft == 1 {
		_, err := fmt.Fprintf(w, "%s...\n", indent)
		return err
	}
	next := depthLeft
	if next > 0 {
		next--
	}
	attr := t.schema.At(nd.Attr)
	if nd.Categorical {
		for c, ch := range nd.Children {
			if ch.IsLeaf() && ch.n() == 0 {
				continue // empty branch, inherited class
			}
			if _, err := fmt.Fprintf(w, "%s%s = %s:", indent, attr.Name, attr.Category(c)); err != nil {
				return err
			}
			if err := t.renderBranch(w, ch, indent, next); err != nil {
				return err
			}
		}
		return nil
	}
	if _, err := fmt.Fprintf(w, "%s%s <= %g:", indent, attr.Name, nd.Threshold); err != nil {
		return err
	}
	if err := t.renderBranch(w, nd.Children[0], indent, next); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s%s > %g:", indent, attr.Name, nd.Threshold); err != nil {
		return err
	}
	return t.renderBranch(w, nd.Children[1], indent, next)
}

// renderBranch prints a leaf inline after the condition, or recurses
// onto new lines for subtrees.
func (t *Tree) renderBranch(w io.Writer, nd *Node, indent string, depthLeft int) error {
	if nd.IsLeaf() {
		_, err := fmt.Fprintf(w, " %s (%.1f)\n",
			t.schema.At(t.classIdx).Category(nd.Class), nd.n())
		return err
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	return t.render(w, nd, indent+"|   ", depthLeft)
}
