// Package c45 is a from-scratch implementation of a C4.5-style decision
// tree classifier (Quinlan 1993, reference [17] of the ARCS paper) and
// the C4.5RULES rule extractor, used as the comparison baseline in the
// paper's evaluation (§4.2, Figures 11-14, Table 2).
//
// The implementation follows the published algorithm: gain-ratio split
// selection, binary threshold splits on continuous attributes with
// candidate cuts between class changes, multiway splits on categorical
// attributes, a minimum-instances constraint, and pessimistic
// (confidence-bound) error pruning. C4.5RULES converts root-to-leaf paths
// into rules and generalizes them by dropping conditions that do not
// increase the pessimistic error estimate.
package c45

import (
	"fmt"
	"math"
	"sort"

	"arcs/internal/dataset"
	"arcs/internal/obs"
	"arcs/internal/stats"
)

// Config controls tree induction.
type Config struct {
	// MinLeaf is the minimum number of training tuples in at least two
	// branches of a split (C4.5's -m). Zero means 2.
	MinLeaf int
	// CF is the pruning confidence factor (C4.5's -c). Zero means 0.25;
	// negative disables pruning.
	CF float64
	// MaxDepth bounds tree depth; zero means unlimited.
	MaxDepth int
	// RuleEvalCap bounds the number of training tuples C4.5RULES uses
	// when estimating rule errors during generalization and subset
	// selection (the original evaluates against everything, which is a
	// large part of why the paper measured exponentially growing
	// C4.5RULES times). Zero means 10000; negative means unlimited.
	RuleEvalCap int
	// Observer, when non-nil, records spans for tree growth, pruning and
	// rule extraction with node/rule accounting, plus registry counters.
	Observer *obs.Observer
}

func (c Config) withDefaults() Config {
	if c.MinLeaf == 0 {
		c.MinLeaf = 2
	}
	if c.CF == 0 {
		c.CF = 0.25
	}
	if c.RuleEvalCap == 0 {
		c.RuleEvalCap = 10_000
	}
	return c
}

// Node is a decision tree node. Leaves have Attr == -1.
type Node struct {
	// Attr is the split attribute's schema index, or -1 for a leaf.
	Attr int
	// Categorical distinguishes multiway category splits from binary
	// threshold splits.
	Categorical bool
	// Threshold is the split point for continuous attributes: values
	// <= Threshold descend into Children[0], the rest into Children[1].
	Threshold float64
	// Children are the subtrees: two for continuous splits, one per
	// category code for categorical splits.
	Children []*Node

	// Class is the majority class at this node.
	Class int
	// Counts is the training class distribution at this node.
	Counts []float64
}

// n returns the number of training tuples at the node.
func (nd *Node) n() float64 {
	var s float64
	for _, c := range nd.Counts {
		s += c
	}
	return s
}

// trainErrors returns the number of training tuples the node mislabels
// when treated as a leaf.
func (nd *Node) trainErrors() float64 {
	return nd.n() - nd.Counts[nd.Class]
}

// IsLeaf reports whether the node is a leaf.
func (nd *Node) IsLeaf() bool { return nd.Attr < 0 }

// Tree is a trained classifier.
type Tree struct {
	Root     *Node
	schema   *dataset.Schema
	classIdx int
	nClasses int
	cfg      Config
	grown    int // nodes created during growth
	pruned   int // internal nodes collapsed by pruning
}

// Train induces a C4.5 tree predicting classAttr from every other
// attribute of the table.
func Train(tb *dataset.Table, classAttr string, cfg Config) (*Tree, error) {
	cfg = cfg.withDefaults()
	classIdx, err := tb.Schema().Index(classAttr)
	if err != nil {
		return nil, err
	}
	if tb.Schema().At(classIdx).Kind != dataset.Categorical {
		return nil, fmt.Errorf("c45: class attribute %q must be categorical", classAttr)
	}
	nClasses := tb.Schema().At(classIdx).NumCategories()
	if nClasses < 2 {
		return nil, fmt.Errorf("c45: class attribute %q has %d categories; need at least 2", classAttr, nClasses)
	}
	if tb.Len() == 0 {
		return nil, fmt.Errorf("c45: empty training set")
	}
	t := &Tree{schema: tb.Schema(), classIdx: classIdx, nClasses: nClasses, cfg: cfg}
	idx := make([]int, tb.Len())
	for i := range idx {
		idx[i] = i
	}
	root := cfg.Observer.Root("c45-train", obs.Int("tuples", tb.Len()), obs.Int("classes", nClasses))
	gsp := root.Child("c45-grow")
	t.Root = t.grow(tb, idx, 0, nil)
	gsp.End(obs.Int("nodes", t.grown), obs.Int("leaves", t.NumLeaves()))
	if cfg.CF >= 0 {
		psp := root.Child("c45-prune")
		t.pruned = t.prune(t.Root)
		psp.End(obs.Int("collapsed", t.pruned), obs.Int("leaves", t.NumLeaves()))
	}
	if cfg.Observer.Enabled() {
		reg := cfg.Observer.Registry()
		reg.Counter("c45_nodes_grown_total").Add(int64(t.grown))
		reg.Counter("c45_nodes_pruned_total").Add(int64(t.pruned))
	}
	root.End(obs.Int("depth", t.Depth()))
	return t, nil
}

// NodesGrown reports how many nodes growth created (before pruning).
func (t *Tree) NodesGrown() int { return t.grown }

// NodesPruned reports how many internal nodes pruning collapsed.
func (t *Tree) NodesPruned() int { return t.pruned }

// classCounts tallies the class distribution of the rows in idx.
func (t *Tree) classCounts(tb *dataset.Table, idx []int) []float64 {
	counts := make([]float64, t.nClasses)
	for _, i := range idx {
		counts[int(tb.Row(i)[t.classIdx])]++
	}
	return counts
}

func majority(counts []float64) int {
	best := 0
	for i, c := range counts {
		if c > counts[best] {
			best = i
		}
	}
	return best
}

// grow recursively induces the subtree over the rows in idx. ancestors
// is the set of attributes split on along the path from the root.
func (t *Tree) grow(tb *dataset.Table, idx []int, depth int, ancestors map[int]bool) *Node {
	t.grown++
	counts := t.classCounts(tb, idx)
	node := &Node{Attr: -1, Counts: counts, Class: majority(counts)}
	if len(idx) < 2*t.cfg.MinLeaf || stats.Entropy(counts) == 0 {
		return node
	}
	if t.cfg.MaxDepth > 0 && depth >= t.cfg.MaxDepth {
		return node
	}
	attr, thr, gainRatio := t.bestSplit(tb, idx, counts, true, nil)
	if attr < 0 || gainRatio <= 0 {
		// Fallback for large impure nodes where every penalized gain is
		// non-positive. This happens on XOR-like interactions (e.g. the
		// quadrant of the paper's Function 2 around age 60 × salary 75k,
		// where class flips across both boundaries at once): each single
		// split is individually worthless, but a near-zero-gain split
		// breaks the symmetry and the children become separable. Two
		// gates keep the fallback sound: it only fires on large nodes
		// (small noisy nodes would grow memorization subtrees pruning
		// cannot always remove), and it only considers attributes
		// already split on along the path — interacting attributes have
		// invariably appeared by then, while fresh high-multiplicity
		// noise attributes, which an unpenalized comparison would
		// otherwise favor, stay excluded.
		if len(idx) < 64 || len(ancestors) == 0 {
			return node
		}
		attr, thr, gainRatio = t.bestSplit(tb, idx, counts, false, ancestors)
		if attr < 0 || gainRatio <= 0 {
			return node
		}
	}
	childAncestors := ancestors
	if !ancestors[attr] {
		childAncestors = make(map[int]bool, len(ancestors)+1)
		for a := range ancestors {
			childAncestors[a] = true
		}
		childAncestors[attr] = true
	}
	node.Attr = attr
	if t.schema.At(attr).Kind == dataset.Categorical {
		node.Categorical = true
		nCats := t.schema.At(attr).NumCategories()
		parts := make([][]int, nCats)
		for _, i := range idx {
			c := int(tb.Row(i)[attr])
			parts[c] = append(parts[c], i)
		}
		node.Children = make([]*Node, nCats)
		for c, part := range parts {
			if len(part) == 0 {
				// Empty branch inherits the parent's majority class.
				node.Children[c] = &Node{Attr: -1, Counts: make([]float64, t.nClasses), Class: node.Class}
				continue
			}
			node.Children[c] = t.grow(tb, part, depth+1, childAncestors)
		}
	} else {
		node.Threshold = thr
		var left, right []int
		for _, i := range idx {
			if tb.Row(i)[attr] <= thr {
				left = append(left, i)
			} else {
				right = append(right, i)
			}
		}
		node.Children = []*Node{t.grow(tb, left, depth+1, childAncestors), t.grow(tb, right, depth+1, childAncestors)}
	}
	return node
}

// bestSplit evaluates every attribute and returns the best (attr,
// threshold, gain ratio); attr is -1 when no admissible split exists.
// Following C4.5, only splits whose information gain is at least the
// average gain of admissible splits compete on gain ratio, which guards
// against the ratio's bias toward near-trivial splits. With penalized
// set, continuous splits are charged the Release-8 cut-choice cost; the
// unpenalized form serves the large-node fallback in grow.
func (t *Tree) bestSplit(tb *dataset.Table, idx []int, parentCounts []float64, penalized bool, allowed map[int]bool) (int, float64, float64) {
	type cand struct {
		attr  int
		thr   float64
		gain  float64
		ratio float64
	}
	var cands []cand
	for attr := 0; attr < t.schema.Len(); attr++ {
		if attr == t.classIdx {
			continue
		}
		if allowed != nil && !allowed[attr] {
			continue
		}
		if t.schema.At(attr).Kind == dataset.Categorical {
			if c, ok := t.categoricalSplit(tb, idx, attr); ok {
				cands = append(cands, cand{attr: attr, gain: c.gain, ratio: c.ratio})
			}
		} else {
			if c, ok := t.continuousSplit(tb, idx, attr, parentCounts, penalized); ok {
				cands = append(cands, cand{attr: attr, thr: c.thr, gain: c.gain, ratio: c.ratio})
			}
		}
	}
	if len(cands) == 0 {
		return -1, 0, 0
	}
	var avgGain float64
	for _, c := range cands {
		avgGain += c.gain
	}
	avgGain /= float64(len(cands))
	best := -1
	for i, c := range cands {
		if c.gain+1e-12 < avgGain {
			continue
		}
		if best < 0 || c.ratio > cands[best].ratio {
			best = i
		}
	}
	if best < 0 {
		return -1, 0, 0
	}
	return cands[best].attr, cands[best].thr, cands[best].ratio
}

type splitEval struct {
	thr   float64
	gain  float64
	ratio float64
}

// categoricalSplit evaluates the multiway split on a categorical
// attribute.
func (t *Tree) categoricalSplit(tb *dataset.Table, idx []int, attr int) (splitEval, bool) {
	nCats := t.schema.At(attr).NumCategories()
	if nCats < 2 {
		return splitEval{}, false
	}
	children := make([][]float64, nCats)
	for c := range children {
		children[c] = make([]float64, t.nClasses)
	}
	for _, i := range idx {
		row := tb.Row(i)
		children[int(row[attr])][int(row[t.classIdx])]++
	}
	// C4.5's -m: at least two branches with MinLeaf tuples.
	branches := 0
	for _, ch := range children {
		var n float64
		for _, v := range ch {
			n += v
		}
		if n >= float64(t.cfg.MinLeaf) {
			branches++
		}
	}
	if branches < 2 {
		return splitEval{}, false
	}
	gain := stats.InfoGain(children)
	ratio := stats.GainRatio(children)
	if gain <= 0 || ratio <= 0 {
		return splitEval{}, false
	}
	return splitEval{gain: gain, ratio: ratio}, true
}

// continuousSplit finds the best binary threshold on a continuous
// attribute, scanning cut points between consecutive distinct values.
// Following C4.5 Release 8 (Quinlan 1996), the information gain of a
// continuous split is charged log2(#candidate cuts)/|D| — the MDL cost
// of transmitting which cut was chosen. Without this correction an
// irrelevant continuous attribute wins nodes by sheer multiplicity of
// candidate thresholds (thousands of cuts versus a handful of category
// splits), fragmenting the tree into noise.
func (t *Tree) continuousSplit(tb *dataset.Table, idx []int, attr int, parentCounts []float64, penalized bool) (splitEval, bool) {
	sorted := append([]int(nil), idx...)
	sort.Slice(sorted, func(a, b int) bool {
		return tb.Row(sorted[a])[attr] < tb.Row(sorted[b])[attr]
	})
	total := float64(len(sorted))
	parentH := stats.Entropy(parentCounts)

	// Count the candidate cuts (boundaries between distinct values) for
	// the Release-8 correction.
	cuts := 0
	for i := 0; i+1 < len(sorted); i++ {
		if tb.Row(sorted[i])[attr] != tb.Row(sorted[i+1])[attr] {
			cuts++
		}
	}
	if cuts == 0 {
		return splitEval{}, false
	}
	penalty := 0.0
	if penalized {
		penalty = math.Log2(float64(cuts)) / total
	}

	left := make([]float64, t.nClasses)
	right := append([]float64(nil), parentCounts...)
	var best splitEval
	found := false
	nLeft := 0.0
	for i := 0; i+1 < len(sorted); i++ {
		row := tb.Row(sorted[i])
		cls := int(row[t.classIdx])
		left[cls]++
		right[cls]--
		nLeft++
		v, vNext := row[attr], tb.Row(sorted[i+1])[attr]
		if v == vNext {
			continue
		}
		if nLeft < float64(t.cfg.MinLeaf) || total-nLeft < float64(t.cfg.MinLeaf) {
			continue
		}
		// Entropy of the two sides, with the cut-choice penalty.
		hL, hR := stats.Entropy(left), stats.Entropy(right)
		gain := parentH - (nLeft/total)*hL - ((total-nLeft)/total)*hR - penalty
		if gain <= 0 {
			continue
		}
		pL := nLeft / total
		splitInfo := -pL*math.Log2(pL) - (1-pL)*math.Log2(1-pL)
		if splitInfo <= 0 {
			continue
		}
		ratio := gain / splitInfo
		if !found || ratio > best.ratio {
			best = splitEval{thr: (v + vNext) / 2, gain: gain, ratio: ratio}
			found = true
		}
	}
	return best, found
}

// Classify predicts the class code of a tuple.
func (t *Tree) Classify(row dataset.Tuple) int {
	nd := t.Root
	for !nd.IsLeaf() {
		if nd.Categorical {
			c := int(row[nd.Attr])
			if c < 0 || c >= len(nd.Children) {
				return nd.Class
			}
			nd = nd.Children[c]
		} else if row[nd.Attr] <= nd.Threshold {
			nd = nd.Children[0]
		} else {
			nd = nd.Children[1]
		}
	}
	return nd.Class
}

// ErrorRate measures the misclassification fraction on a table.
func (t *Tree) ErrorRate(tb *dataset.Table) float64 {
	if tb.Len() == 0 {
		return 0
	}
	wrong := 0
	for i := 0; i < tb.Len(); i++ {
		row := tb.Row(i)
		if t.Classify(row) != int(row[t.classIdx]) {
			wrong++
		}
	}
	return float64(wrong) / float64(tb.Len())
}

// NumLeaves counts the tree's leaves.
func (t *Tree) NumLeaves() int { return countLeaves(t.Root) }

func countLeaves(nd *Node) int {
	if nd.IsLeaf() {
		return 1
	}
	n := 0
	for _, ch := range nd.Children {
		n += countLeaves(ch)
	}
	return n
}

// Depth reports the maximum root-to-leaf depth.
func (t *Tree) Depth() int { return depth(t.Root) }

func depth(nd *Node) int {
	if nd.IsLeaf() {
		return 0
	}
	max := 0
	for _, ch := range nd.Children {
		if d := depth(ch); d > max {
			max = d
		}
	}
	return max + 1
}
