package c45

import (
	"fmt"
	"sort"
	"strings"

	"arcs/internal/dataset"
	"arcs/internal/obs"
)

// Cond is one condition of an extracted rule.
type Cond struct {
	Attr        int
	Categorical bool
	// Cat is the required category code for categorical conditions.
	Cat int
	// Le selects value <= Threshold (true) or value > Threshold (false)
	// for continuous conditions.
	Le        bool
	Threshold float64
}

// matches reports whether a tuple satisfies the condition.
func (c Cond) matches(row dataset.Tuple) bool {
	if c.Categorical {
		return int(row[c.Attr]) == c.Cat
	}
	if c.Le {
		return row[c.Attr] <= c.Threshold
	}
	return row[c.Attr] > c.Threshold
}

// Rule is a conjunctive classification rule produced by C4.5RULES.
type Rule struct {
	Conds []Cond
	Class int
}

// Matches reports whether a tuple satisfies every condition.
func (r Rule) Matches(row dataset.Tuple) bool {
	for _, c := range r.Conds {
		if !c.matches(row) {
			return false
		}
	}
	return true
}

// render formats the rule against a schema.
func (r Rule) render(schema *dataset.Schema, classIdx int) string {
	var parts []string
	for _, c := range r.Conds {
		a := schema.At(c.Attr)
		if c.Categorical {
			parts = append(parts, fmt.Sprintf("%s = %s", a.Name, a.Category(c.Cat)))
		} else if c.Le {
			parts = append(parts, fmt.Sprintf("%s <= %g", a.Name, c.Threshold))
		} else {
			parts = append(parts, fmt.Sprintf("%s > %g", a.Name, c.Threshold))
		}
	}
	lhs := strings.Join(parts, " AND ")
	if lhs == "" {
		lhs = "true"
	}
	return fmt.Sprintf("%s => %s = %s", lhs, schema.At(classIdx).Name,
		schema.At(classIdx).Category(r.Class))
}

// RuleSet is an ordered rule list with a default class, the final output
// of C4.5RULES. Classification takes the first matching rule.
type RuleSet struct {
	Rules   []Rule
	Default int

	schema   *dataset.Schema
	classIdx int
}

// Classify predicts the class of a tuple.
func (rs *RuleSet) Classify(row dataset.Tuple) int {
	for _, r := range rs.Rules {
		if r.Matches(row) {
			return r.Class
		}
	}
	return rs.Default
}

// ErrorRate measures the misclassification fraction on a table.
func (rs *RuleSet) ErrorRate(tb *dataset.Table) float64 {
	if tb.Len() == 0 {
		return 0
	}
	wrong := 0
	for i := 0; i < tb.Len(); i++ {
		row := tb.Row(i)
		if rs.Classify(row) != int(row[rs.classIdx]) {
			wrong++
		}
	}
	return float64(wrong) / float64(tb.Len())
}

// Strings renders every rule plus the default for reports.
func (rs *RuleSet) Strings() []string {
	out := make([]string, 0, len(rs.Rules)+1)
	for _, r := range rs.Rules {
		out = append(out, r.render(rs.schema, rs.classIdx))
	}
	out = append(out, fmt.Sprintf("default => %s = %s",
		rs.schema.At(rs.classIdx).Name, rs.schema.At(rs.classIdx).Category(rs.Default)))
	return out
}

// ExtractRules converts the tree into a generalized rule set in the
// manner of C4.5RULES: each root-to-leaf path becomes a rule; conditions
// are greedily dropped while the rule's pessimistic error on the training
// data does not increase; duplicate and strictly-worse rules are removed;
// rules are ordered by ascending pessimistic error, and the default class
// is the majority class of the training tuples no rule covers.
func (t *Tree) ExtractRules(tb *dataset.Table) *RuleSet {
	rsp := t.cfg.Observer.Root("c45-rules", obs.Int("leaves", t.NumLeaves()))
	// Error estimation during generalization and selection runs against
	// a strided subsample when the training set exceeds RuleEvalCap.
	eval := tb
	if cap := t.cfg.RuleEvalCap; cap > 0 && tb.Len() > cap {
		stride := tb.Len() / cap
		idx := make([]int, 0, cap)
		for i := 0; i < tb.Len() && len(idx) < cap; i += stride {
			idx = append(idx, i)
		}
		eval = tb.Select(idx)
	}
	var raw []Rule
	var walk func(nd *Node, conds []Cond)
	walk = func(nd *Node, conds []Cond) {
		if nd.IsLeaf() {
			if nd.n() == 0 {
				return // empty categorical branch
			}
			raw = append(raw, Rule{Conds: append([]Cond(nil), conds...), Class: nd.Class})
			return
		}
		if nd.Categorical {
			for c, ch := range nd.Children {
				walk(ch, append(conds, Cond{Attr: nd.Attr, Categorical: true, Cat: c}))
			}
		} else {
			walk(nd.Children[0], append(conds, Cond{Attr: nd.Attr, Le: true, Threshold: nd.Threshold}))
			walk(nd.Children[1], append(conds, Cond{Attr: nd.Attr, Le: false, Threshold: nd.Threshold}))
		}
	}
	walk(t.Root, nil)

	// Generalize each rule by dropping conditions.
	type scored struct {
		rule Rule
		pess float64
	}
	var generalized []scored
	for _, r := range raw {
		rule := r
		for improved := true; improved && len(rule.Conds) > 0; {
			improved = false
			base := t.pessimisticRuleError(eval, rule)
			for drop := range rule.Conds {
				cand := Rule{Class: rule.Class}
				cand.Conds = append(cand.Conds, rule.Conds[:drop]...)
				cand.Conds = append(cand.Conds, rule.Conds[drop+1:]...)
				if t.pessimisticRuleError(eval, cand) <= base+1e-9 {
					rule = cand
					improved = true
					break
				}
			}
		}
		generalized = append(generalized, scored{rule: rule, pess: t.pessimisticRuleError(eval, rule)})
	}

	// Deduplicate (generalization often collapses sibling paths).
	seen := make(map[string]bool)
	var unique []scored
	for _, s := range generalized {
		key := ruleKey(s.rule)
		if !seen[key] {
			seen[key] = true
			unique = append(unique, s)
		}
	}
	sort.SliceStable(unique, func(i, j int) bool { return unique[i].pess < unique[j].pess })

	// Rule subset selection (C4.5RULES performs an MDL-guided subset
	// search per class; we use the equivalent greedy form): walk the
	// rules from most to least reliable and keep a rule only when the
	// exceptions it fixes outweigh both the exceptions it introduces and
	// the cost of encoding the rule itself — approximated as one
	// exception per condition. This is what collapses thousands of leaf
	// paths (many isolating a handful of noisy tuples each) into the
	// small rule sets the paper reports.
	rs := &RuleSet{schema: t.schema, classIdx: t.classIdx}
	coveredBy := make([]bool, eval.Len())
	for _, s := range unique {
		correct, wrong := 0, 0
		var newly []int
		for i := 0; i < eval.Len(); i++ {
			if coveredBy[i] {
				continue
			}
			row := eval.Row(i)
			if !s.rule.Matches(row) {
				continue
			}
			newly = append(newly, i)
			if int(row[t.classIdx]) == s.rule.Class {
				correct++
			} else {
				wrong++
			}
		}
		encodingCost := len(s.rule.Conds) + 1
		if correct-wrong > encodingCost {
			rs.Rules = append(rs.Rules, s.rule)
			for _, i := range newly {
				coveredBy[i] = true
			}
		}
	}

	// Default class: majority among uncovered training tuples, falling
	// back to the global majority.
	counts := make([]float64, t.nClasses)
	covered := 0
	for i := 0; i < tb.Len(); i++ {
		row := tb.Row(i)
		matched := false
		for _, r := range rs.Rules {
			if r.Matches(row) {
				matched = true
				break
			}
		}
		if !matched {
			counts[int(row[t.classIdx])]++
		} else {
			covered++
		}
	}
	if covered == tb.Len() {
		rs.Default = t.Root.Class
	} else {
		rs.Default = majority(counts)
	}
	if t.cfg.Observer.Enabled() {
		t.cfg.Observer.Registry().Counter("c45_rules_extracted_total").Add(int64(len(rs.Rules)))
	}
	rsp.End(obs.Int("rules", len(rs.Rules)), obs.Int("paths", len(raw)))
	return rs
}

// pessimisticRuleError computes the upper confidence bound on the rule's
// error over the training tuples it covers. Rules covering nothing are
// maximally pessimistic.
func (t *Tree) pessimisticRuleError(tb *dataset.Table, r Rule) float64 {
	var n, e float64
	for i := 0; i < tb.Len(); i++ {
		row := tb.Row(i)
		if !r.Matches(row) {
			continue
		}
		n++
		if int(row[t.classIdx]) != r.Class {
			e++
		}
	}
	if n == 0 {
		return 1
	}
	return upperErrorBound(e, n, t.cfg.CF) / n
}

func ruleKey(r Rule) string {
	conds := append([]Cond(nil), r.Conds...)
	sort.Slice(conds, func(i, j int) bool {
		a, b := conds[i], conds[j]
		if a.Attr != b.Attr {
			return a.Attr < b.Attr
		}
		if a.Categorical != b.Categorical {
			return a.Categorical
		}
		if a.Cat != b.Cat {
			return a.Cat < b.Cat
		}
		if a.Le != b.Le {
			return a.Le
		}
		return a.Threshold < b.Threshold
	})
	var sb strings.Builder
	fmt.Fprintf(&sb, "c%d:", r.Class)
	for _, c := range conds {
		fmt.Fprintf(&sb, "%d/%v/%d/%v/%g;", c.Attr, c.Categorical, c.Cat, c.Le, c.Threshold)
	}
	return sb.String()
}
