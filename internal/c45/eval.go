package c45

import (
	"fmt"
	"strings"

	"arcs/internal/dataset"
)

// Classifier is anything that predicts a class code for a tuple — both
// Tree and RuleSet satisfy it.
type Classifier interface {
	Classify(row dataset.Tuple) int
}

// ConfusionMatrix counts predictions versus actual classes.
// Cell [actual][predicted] is the number of test tuples of class
// `actual` predicted as `predicted`.
type ConfusionMatrix struct {
	Labels []string
	Counts [][]int
}

// Confusion evaluates a classifier over a table and tallies the matrix.
func Confusion(c Classifier, tb *dataset.Table, classAttr string) (*ConfusionMatrix, error) {
	classIdx, err := tb.Schema().Index(classAttr)
	if err != nil {
		return nil, err
	}
	attr := tb.Schema().At(classIdx)
	if attr.Kind != dataset.Categorical {
		return nil, fmt.Errorf("c45: class attribute %q must be categorical", classAttr)
	}
	n := attr.NumCategories()
	m := &ConfusionMatrix{Labels: attr.Categories(), Counts: make([][]int, n)}
	for i := range m.Counts {
		m.Counts[i] = make([]int, n)
	}
	for i := 0; i < tb.Len(); i++ {
		row := tb.Row(i)
		actual := int(row[classIdx])
		pred := c.Classify(row)
		if pred < 0 || pred >= n {
			return nil, fmt.Errorf("c45: classifier predicted out-of-range class %d", pred)
		}
		m.Counts[actual][pred]++
	}
	return m, nil
}

// Total reports the number of evaluated tuples.
func (m *ConfusionMatrix) Total() int {
	t := 0
	for _, row := range m.Counts {
		for _, c := range row {
			t += c
		}
	}
	return t
}

// Accuracy reports the fraction of correct predictions.
func (m *ConfusionMatrix) Accuracy() float64 {
	total := m.Total()
	if total == 0 {
		return 0
	}
	correct := 0
	for i := range m.Counts {
		correct += m.Counts[i][i]
	}
	return float64(correct) / float64(total)
}

// Precision reports TP / (TP + FP) for one class.
func (m *ConfusionMatrix) Precision(class int) float64 {
	var predicted int
	for actual := range m.Counts {
		predicted += m.Counts[actual][class]
	}
	if predicted == 0 {
		return 0
	}
	return float64(m.Counts[class][class]) / float64(predicted)
}

// Recall reports TP / (TP + FN) for one class.
func (m *ConfusionMatrix) Recall(class int) float64 {
	var actual int
	for _, c := range m.Counts[class] {
		actual += c
	}
	if actual == 0 {
		return 0
	}
	return float64(m.Counts[class][class]) / float64(actual)
}

// String renders the matrix with labels.
func (m *ConfusionMatrix) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s", "actual\\pred")
	for _, l := range m.Labels {
		fmt.Fprintf(&sb, "%12s", l)
	}
	sb.WriteByte('\n')
	for i, row := range m.Counts {
		fmt.Fprintf(&sb, "%-14s", m.Labels[i])
		for _, c := range row {
			fmt.Fprintf(&sb, "%12d", c)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// CrossValidate runs k-fold cross-validation of tree induction over the
// table and returns the per-fold test error rates. Folds are contiguous
// blocks; shuffle the table first if its order is meaningful.
func CrossValidate(tb *dataset.Table, classAttr string, cfg Config, k int) ([]float64, error) {
	if k < 2 {
		return nil, fmt.Errorf("c45: need at least 2 folds, got %d", k)
	}
	if tb.Len() < k {
		return nil, fmt.Errorf("c45: %d tuples cannot fill %d folds", tb.Len(), k)
	}
	errs := make([]float64, 0, k)
	foldSize := tb.Len() / k
	for fold := 0; fold < k; fold++ {
		lo := fold * foldSize
		hi := lo + foldSize
		if fold == k-1 {
			hi = tb.Len()
		}
		var trainIdx []int
		for i := 0; i < tb.Len(); i++ {
			if i < lo || i >= hi {
				trainIdx = append(trainIdx, i)
			}
		}
		train := tb.Select(trainIdx)
		test := tb.Slice(lo, hi)
		tree, err := Train(train, classAttr, cfg)
		if err != nil {
			return nil, fmt.Errorf("c45: fold %d: %w", fold, err)
		}
		errs = append(errs, tree.ErrorRate(test))
	}
	return errs, nil
}
