// Package quant implements quantitative association rule mining in the
// style of Srikant & Agrawal (SIGMOD 1996) — the system the ARCS paper
// contrasts itself with in §1.1. Attributes are partitioned into base
// bins; adjacent bins are merged into candidate intervals up to a
// maximum-support cap (merging past it would only produce trivially
// general items); frequent itemsets of intervals are mined levelwise;
// and rules are pruned with the "greater-than-expected-value" interest
// measure against their generalizations.
//
// The package exists both as a usable miner and as the experimental
// counterpart that motivates ARCS: on the paper's Function 2 data it
// produces the hundreds of overlapping interval rules that clustering
// condenses into three rectangles (see the WhyClustering experiment).
package quant

import (
	"fmt"
	"sort"
	"strings"

	"arcs/internal/dataset"
)

// Interval is one item: attribute attr restricted to bins [Lo, Hi]
// (inclusive). Categorical attributes use Lo == Hi.
type Interval struct {
	Attr   int
	Lo, Hi int
}

// Contains reports whether the interval contains o (same attribute,
// wider or equal range).
func (iv Interval) Contains(o Interval) bool {
	return iv.Attr == o.Attr && iv.Lo <= o.Lo && o.Hi <= iv.Hi
}

// matches reports whether a binned tuple falls in the interval.
func (iv Interval) matches(t dataset.Tuple) bool {
	v := int(t[iv.Attr])
	return iv.Lo <= v && v <= iv.Hi
}

// Rule is a quantitative association rule X => Y.
type Rule struct {
	X          []Interval
	Y          Interval
	Support    float64
	Confidence float64
}

// Render formats the rule against a schema and per-attribute bin bounds
// lookup (bin index -> value range), e.g.
//
//	age[30,40) AND salary[50000,75000) => group = A
func (r Rule) Render(schema *dataset.Schema, bounds func(attr, bin int) (float64, float64)) string {
	part := func(iv Interval) string {
		a := schema.At(iv.Attr)
		if a.Kind == dataset.Categorical {
			return fmt.Sprintf("%s = %s", a.Name, a.Category(iv.Lo))
		}
		lo, _ := bounds(iv.Attr, iv.Lo)
		_, hi := bounds(iv.Attr, iv.Hi)
		return fmt.Sprintf("%s[%g,%g)", a.Name, lo, hi)
	}
	parts := make([]string, len(r.X))
	for i, iv := range r.X {
		parts[i] = part(iv)
	}
	return fmt.Sprintf("%s => %s", strings.Join(parts, " AND "), part(r.Y))
}

// Config controls mining. The table must already be binned: every cell
// an integer bin index or category code.
type Config struct {
	// MinSupport and MinConfidence are the usual thresholds.
	MinSupport    float64
	MinConfidence float64
	// MaxSupport caps interval merging (Srikant & Agrawal's maxsup): a
	// merged interval whose support exceeds it is not a candidate item,
	// preventing trivially general ranges. Zero means 0.25.
	MaxSupport float64
	// Interest is the greater-than-expected factor R: a rule must have
	// support or confidence at least R times what its generalizations
	// predict. Zero disables interest pruning; the SIGMOD paper suggests
	// R ≈ 1.1–2.
	Interest float64
	// RHSAttr restricts rule consequents to one attribute (schema
	// index), the segmentation use case. Negative allows any attribute.
	RHSAttr int
	// MaxLHS bounds the number of LHS intervals. Zero means 2 (the 2D
	// segmentation shape).
	MaxLHS int
	// Bins gives the bin count per attribute index (categorical
	// attributes: category count). Required.
	Bins []int
}

func (c Config) withDefaults() Config {
	if c.MaxSupport == 0 {
		c.MaxSupport = 0.25
	}
	if c.MaxLHS == 0 {
		c.MaxLHS = 2
	}
	return c
}

func (c Config) validate(schema *dataset.Schema) error {
	if c.MinSupport < 0 || c.MinSupport > 1 {
		return fmt.Errorf("quant: min support %g outside [0, 1]", c.MinSupport)
	}
	if c.MinConfidence < 0 || c.MinConfidence > 1 {
		return fmt.Errorf("quant: min confidence %g outside [0, 1]", c.MinConfidence)
	}
	if c.MaxSupport < c.MinSupport {
		return fmt.Errorf("quant: max support %g below min support %g", c.MaxSupport, c.MinSupport)
	}
	if c.Interest < 0 {
		return fmt.Errorf("quant: negative interest factor %g", c.Interest)
	}
	if len(c.Bins) != schema.Len() {
		return fmt.Errorf("quant: Bins has %d entries for %d attributes", len(c.Bins), schema.Len())
	}
	for i, b := range c.Bins {
		if b <= 0 {
			return fmt.Errorf("quant: attribute %d has %d bins", i, b)
		}
	}
	return nil
}

// Mine runs the full pipeline over a binned table.
func Mine(tb *dataset.Table, cfg Config) ([]Rule, error) {
	cfg = cfg.withDefaults()
	schema := tb.Schema()
	if err := cfg.validate(schema); err != nil {
		return nil, err
	}
	n := tb.Len()
	if n == 0 {
		return nil, nil
	}

	// Fast path: with at most three attributes, a prefix-summed joint
	// histogram answers every candidate's support in O(1) instead of a
	// table scan per level.
	var cb *cube
	if schema.Len() <= 3 {
		cb = newCube(tb, cfg.Bins)
	}

	items := candidateItems(tb, cfg)
	supports := map[Interval]float64{}
	for _, it := range items {
		supports[it.iv] = it.sup
	}

	// Levelwise itemsets: level 1 = items; join items on distinct
	// attributes. An itemset is a sorted slice of intervals with unique
	// attributes.
	type itemset struct {
		ivs []Interval
		sup float64
	}
	level := make([]itemset, len(items))
	for i, it := range items {
		level[i] = itemset{ivs: []Interval{it.iv}, sup: it.sup}
	}
	setSupport := map[string]float64{}
	keyOf := func(ivs []Interval) string {
		var sb strings.Builder
		for _, iv := range ivs {
			fmt.Fprintf(&sb, "%d:%d-%d;", iv.Attr, iv.Lo, iv.Hi)
		}
		return sb.String()
	}
	for _, it := range level {
		setSupport[keyOf(it.ivs)] = it.sup
	}
	frequent := append([]itemset(nil), level...)

	maxSize := cfg.MaxLHS + 1
	for size := 2; size <= maxSize && len(level) > 0; size++ {
		// Candidates: extend each (size-1)-itemset with a single item on
		// a new attribute, canonical order by attribute.
		seen := map[string]bool{}
		var cands [][]Interval
		for _, base := range level {
			lastAttr := base.ivs[len(base.ivs)-1].Attr
			for _, it := range items {
				if it.iv.Attr <= lastAttr {
					continue
				}
				cand := append(append([]Interval(nil), base.ivs...), it.iv)
				k := keyOf(cand)
				if !seen[k] {
					seen[k] = true
					cands = append(cands, cand)
				}
			}
		}
		if len(cands) == 0 {
			break
		}
		counts := make([]int, len(cands))
		if cb != nil {
			for ci, cand := range cands {
				counts[ci] = cb.count(cand)
			}
		} else {
			for r := 0; r < n; r++ {
				row := tb.Row(r)
			cand:
				for ci, cand := range cands {
					for _, iv := range cand {
						if !iv.matches(row) {
							continue cand
						}
					}
					counts[ci]++
				}
			}
		}
		level = level[:0]
		for ci, cand := range cands {
			sup := float64(counts[ci]) / float64(n)
			if sup >= cfg.MinSupport {
				is := itemset{ivs: cand, sup: sup}
				level = append(level, is)
				setSupport[keyOf(cand)] = sup
				frequent = append(frequent, is)
			}
		}
	}

	// Rule generation: one consequent item, the rest LHS.
	var out []Rule
	for _, is := range frequent {
		if len(is.ivs) < 2 {
			continue
		}
		for yi, y := range is.ivs {
			if cfg.RHSAttr >= 0 && y.Attr != cfg.RHSAttr {
				continue
			}
			x := make([]Interval, 0, len(is.ivs)-1)
			for i, iv := range is.ivs {
				if i != yi {
					x = append(x, iv)
				}
			}
			supX, ok := setSupport[keyOf(x)]
			if !ok || supX == 0 {
				continue
			}
			conf := is.sup / supX
			if conf < cfg.MinConfidence {
				continue
			}
			out = append(out, Rule{X: x, Y: y, Support: is.sup, Confidence: conf})
		}
	}

	if cfg.Interest > 0 {
		out = pruneUninteresting(out, supports, cfg.Interest)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		return out[i].Confidence > out[j].Confidence
	})
	return out, nil
}

type scoredItem struct {
	iv  Interval
	sup float64
}

// candidateItems enumerates the interval items: per quantitative
// attribute, every run of adjacent bins whose support is at least
// MinSupport and (for merged runs) at most MaxSupport; per categorical
// attribute, every value with support at least MinSupport.
func candidateItems(tb *dataset.Table, cfg Config) []scoredItem {
	schema := tb.Schema()
	n := tb.Len()
	var out []scoredItem
	for attr := 0; attr < schema.Len(); attr++ {
		bins := cfg.Bins[attr]
		counts := make([]int, bins)
		for r := 0; r < n; r++ {
			b := int(tb.Row(r)[attr])
			if b >= 0 && b < bins {
				counts[b]++
			}
		}
		prefix := make([]int, bins+1)
		for b, c := range counts {
			prefix[b+1] = prefix[b] + c
		}
		rangeSup := func(lo, hi int) float64 {
			return float64(prefix[hi+1]-prefix[lo]) / float64(n)
		}
		if schema.At(attr).Kind == dataset.Categorical {
			for b := 0; b < bins; b++ {
				if sup := rangeSup(b, b); sup >= cfg.MinSupport {
					out = append(out, scoredItem{iv: Interval{Attr: attr, Lo: b, Hi: b}, sup: sup})
				}
			}
			continue
		}
		for lo := 0; lo < bins; lo++ {
			for hi := lo; hi < bins; hi++ {
				sup := rangeSup(lo, hi)
				if sup < cfg.MinSupport {
					continue
				}
				if hi > lo && sup > cfg.MaxSupport {
					break // growing further only increases support
				}
				out = append(out, scoredItem{iv: Interval{Attr: attr, Lo: lo, Hi: hi}, sup: sup})
			}
		}
	}
	return out
}

// pruneUninteresting drops rules that are within factor R of what a
// strict generalization predicts (Srikant & Agrawal's interest measure):
// rule r with generalization g (same attributes, every interval of g
// containing r's) predicts
//
//	E[sup(r)] = sup(g) × ∏ sup(r_i)/sup(g_i)
//
// and r survives only if sup(r) >= R·E[sup(r)] or
// conf(r) >= R·conf(g).
func pruneUninteresting(rulesIn []Rule, itemSup map[Interval]float64, r float64) []Rule {
	var out []Rule
	for _, cand := range rulesIn {
		interesting := true
		for _, gen := range rulesIn {
			if !strictGeneralization(gen, cand) {
				continue
			}
			expected := gen.Support
			ok := true
			for i, iv := range cand.X {
				gSup := itemSup[gen.X[i]]
				iSup := itemSup[iv]
				if gSup <= 0 {
					ok = false
					break
				}
				expected *= iSup / gSup
			}
			gy := itemSup[gen.Y]
			iy := itemSup[cand.Y]
			if gy > 0 {
				expected *= iy / gy
			}
			if !ok {
				continue
			}
			if cand.Support < r*expected && cand.Confidence < r*gen.Confidence {
				interesting = false
				break
			}
		}
		if interesting {
			out = append(out, cand)
		}
	}
	return out
}

// strictGeneralization reports whether g generalizes cand: identical
// attribute signature, every interval of g contains cand's, and at least
// one containment is strict.
func strictGeneralization(g, cand Rule) bool {
	if len(g.X) != len(cand.X) {
		return false
	}
	strict := false
	for i := range g.X {
		if !g.X[i].Contains(cand.X[i]) {
			return false
		}
		if g.X[i] != cand.X[i] {
			strict = true
		}
	}
	if !g.Y.Contains(cand.Y) {
		return false
	}
	if g.Y != cand.Y {
		strict = true
	}
	return strict
}
