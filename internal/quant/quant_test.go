package quant

import (
	"math"
	"testing"

	"arcs/internal/dataset"
)

// binnedTable builds a pre-binned table: x (4 bins), y (4 bins),
// g categorical (2 values).
func binnedTable(t *testing.T, rows [][3]float64) *dataset.Table {
	t.Helper()
	s := dataset.NewSchema(
		dataset.Attribute{Name: "x", Kind: dataset.Quantitative},
		dataset.Attribute{Name: "y", Kind: dataset.Quantitative},
		dataset.Attribute{Name: "g", Kind: dataset.Categorical},
	)
	s.Attr("g").CategoryCode("A")
	s.Attr("g").CategoryCode("B")
	tb := dataset.NewTable(s)
	for _, r := range rows {
		tb.MustAppend(dataset.Tuple{r[0], r[1], r[2]})
	}
	return tb
}

func cfg() Config {
	return Config{
		MinSupport:    0.1,
		MinConfidence: 0.6,
		MaxSupport:    0.6,
		RHSAttr:       2,
		Bins:          []int{4, 4, 2},
	}
}

func TestMineFindsIntervalRule(t *testing.T) {
	// x in bins {1,2} strongly implies g=A.
	var rows [][3]float64
	for i := 0; i < 10; i++ {
		rows = append(rows, [3]float64{1, float64(i % 4), 0})
		rows = append(rows, [3]float64{2, float64(i % 4), 0})
	}
	for i := 0; i < 10; i++ {
		rows = append(rows, [3]float64{0, float64(i % 4), 1})
		rows = append(rows, [3]float64{3, float64(i % 4), 1})
	}
	tb := binnedTable(t, rows)
	c := cfg()
	c.MaxLHS = 1
	rs, err := Mine(tb, c)
	if err != nil {
		t.Fatal(err)
	}
	// The merged interval x∈[1,2] => A with confidence 1 must appear.
	found := false
	for _, r := range rs {
		if len(r.X) == 1 && r.X[0] == (Interval{Attr: 0, Lo: 1, Hi: 2}) &&
			r.Y == (Interval{Attr: 2, Lo: 0, Hi: 0}) {
			found = true
			if math.Abs(r.Confidence-1) > 1e-12 {
				t.Errorf("confidence = %v", r.Confidence)
			}
			if math.Abs(r.Support-0.5) > 1e-12 {
				t.Errorf("support = %v", r.Support)
			}
		}
	}
	if !found {
		for _, r := range rs {
			t.Logf("rule: %+v", r)
		}
		t.Fatal("merged interval rule x[1,2] => A not mined")
	}
	// Every rule's consequent must be the criterion attribute.
	for _, r := range rs {
		if r.Y.Attr != 2 {
			t.Errorf("RHS restriction violated: %+v", r)
		}
	}
}

func TestMaxSupportCapsMerging(t *testing.T) {
	// Uniform x over 4 bins: the full range [0,3] has support 1 and must
	// not be a candidate when MaxSupport = 0.6.
	var rows [][3]float64
	for i := 0; i < 40; i++ {
		rows = append(rows, [3]float64{float64(i % 4), 0, float64(i % 2)})
	}
	tb := binnedTable(t, rows)
	items := candidateItems(tb, cfg().withDefaults())
	for _, it := range items {
		if it.iv.Attr == 0 && it.iv.Lo == 0 && it.iv.Hi == 3 {
			t.Error("full-range interval should be capped by MaxSupport")
		}
	}
	// Single bins above MinSupport survive regardless of the cap.
	single := 0
	for _, it := range items {
		if it.iv.Attr == 0 && it.iv.Lo == it.iv.Hi {
			single++
		}
	}
	if single != 4 {
		t.Errorf("single-bin items = %d, want 4", single)
	}
}

func TestTwoAttributeLHS(t *testing.T) {
	// g=A exactly when x=1 and y in {2,3}.
	var rows [][3]float64
	for i := 0; i < 20; i++ {
		x := float64(i % 4)
		y := float64((i / 4) % 4)
		g := 1.0
		if x == 1 && y >= 2 {
			g = 0
		}
		rows = append(rows, [3]float64{x, y, g})
		rows = append(rows, [3]float64{x, y, g})
	}
	tb := binnedTable(t, rows)
	c := cfg()
	c.MinSupport = 0.05
	rs, err := Mine(tb, c)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range rs {
		if len(r.X) != 2 {
			continue
		}
		if r.X[0] == (Interval{Attr: 0, Lo: 1, Hi: 1}) &&
			r.X[1] == (Interval{Attr: 1, Lo: 2, Hi: 3}) &&
			r.Y.Attr == 2 && r.Y.Lo == 0 && r.Confidence == 1 {
			found = true
		}
	}
	if !found {
		t.Error("joint rule x=1 AND y[2,3] => A not found")
	}
}

func TestInterestPruning(t *testing.T) {
	// x's sub-intervals carry no extra information over the merged
	// interval: with interest pruning the specializations disappear.
	var rows [][3]float64
	for b := 0; b < 2; b++ {
		for i := 0; i < 10; i++ {
			rows = append(rows, [3]float64{float64(b), 0, 0}) // bins 0,1 -> A
		}
	}
	for i := 0; i < 20; i++ {
		rows = append(rows, [3]float64{2 + float64(i%2), 0, 1}) // bins 2,3 -> B
	}
	tb := binnedTable(t, rows)
	c := cfg()
	c.MaxLHS = 1
	c.MinSupport = 0.05
	c.MaxSupport = 0.55
	base, err := Mine(tb, c)
	if err != nil {
		t.Fatal(err)
	}
	c.Interest = 1.1
	pruned, err := Mine(tb, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(pruned) >= len(base) {
		t.Errorf("interest pruning did not reduce rules: %d -> %d", len(base), len(pruned))
	}
	// The general rule x[0,1] => A must survive.
	foundGeneral := false
	for _, r := range pruned {
		if len(r.X) == 1 && r.X[0] == (Interval{Attr: 0, Lo: 0, Hi: 1}) && r.Y.Lo == 0 {
			foundGeneral = true
		}
	}
	if !foundGeneral {
		for _, r := range pruned {
			t.Logf("rule: %+v", r)
		}
		t.Error("general rule pruned; only specializations should go")
	}
}

func TestRender(t *testing.T) {
	tb := binnedTable(t, [][3]float64{{0, 0, 0}})
	r := Rule{
		X: []Interval{{Attr: 0, Lo: 1, Hi: 2}},
		Y: Interval{Attr: 2, Lo: 0, Hi: 0},
	}
	bounds := func(attr, bin int) (float64, float64) {
		return float64(bin * 10), float64((bin + 1) * 10)
	}
	got := r.Render(tb.Schema(), bounds)
	want := "x[10,30) => g = A"
	if got != want {
		t.Errorf("Render = %q, want %q", got, want)
	}
}

func TestValidation(t *testing.T) {
	tb := binnedTable(t, [][3]float64{{0, 0, 0}})
	bad := []Config{
		{MinSupport: -1, Bins: []int{4, 4, 2}},
		{MinConfidence: 2, Bins: []int{4, 4, 2}},
		{MinSupport: 0.5, MaxSupport: 0.1, Bins: []int{4, 4, 2}},
		{Interest: -1, Bins: []int{4, 4, 2}},
		{Bins: []int{4}},
		{Bins: []int{4, 0, 2}},
	}
	for i, c := range bad {
		if _, err := Mine(tb, c); err == nil {
			t.Errorf("case %d should be rejected", i)
		}
	}
	// Empty table mines nothing.
	empty := binnedTable(t, nil)
	rs, err := Mine(empty, cfg())
	if err != nil || rs != nil {
		t.Errorf("empty: %v, %v", rs, err)
	}
}

func TestIntervalContains(t *testing.T) {
	a := Interval{Attr: 0, Lo: 1, Hi: 3}
	if !a.Contains(Interval{Attr: 0, Lo: 2, Hi: 3}) {
		t.Error("should contain sub-interval")
	}
	if a.Contains(Interval{Attr: 1, Lo: 2, Hi: 3}) {
		t.Error("different attribute should not be contained")
	}
	if a.Contains(Interval{Attr: 0, Lo: 0, Hi: 2}) {
		t.Error("overlapping-but-not-contained should fail")
	}
}

func TestCubeMatchesScan(t *testing.T) {
	// Differential: cube counts must equal naive scans on random data.
	var rows [][3]float64
	for i := 0; i < 200; i++ {
		rows = append(rows, [3]float64{float64(i % 4), float64((i / 3) % 4), float64(i % 2)})
	}
	tb := binnedTable(t, rows)
	cb := newCube(tb, []int{4, 4, 2})
	cases := [][]Interval{
		{{Attr: 0, Lo: 1, Hi: 2}},
		{{Attr: 1, Lo: 0, Hi: 3}},
		{{Attr: 2, Lo: 1, Hi: 1}},
		{{Attr: 0, Lo: 0, Hi: 1}, {Attr: 1, Lo: 2, Hi: 3}},
		{{Attr: 0, Lo: 2, Hi: 2}, {Attr: 1, Lo: 1, Hi: 1}, {Attr: 2, Lo: 0, Hi: 0}},
		{{Attr: 0, Lo: 3, Hi: 3}, {Attr: 2, Lo: 1, Hi: 1}},
	}
	for _, ivs := range cases {
		want := 0
	row:
		for r := 0; r < tb.Len(); r++ {
			for _, iv := range ivs {
				if !iv.matches(tb.Row(r)) {
					continue row
				}
			}
			want++
		}
		if got := cb.count(ivs); got != want {
			t.Errorf("cube count %v = %d, scan = %d", ivs, got, want)
		}
	}
	// Conflicting intervals on the same attribute count zero.
	if got := cb.count([]Interval{{Attr: 0, Lo: 0, Hi: 0}, {Attr: 0, Lo: 3, Hi: 3}}); got != 0 {
		t.Errorf("conflicting intervals counted %d", got)
	}
}
