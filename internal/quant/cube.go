package quant

import "arcs/internal/dataset"

// cube is a joint histogram over up to three attributes with 2D prefix
// sums, giving O(1) support for any (interval, interval, interval)
// conjunction. It is the fast path for the segmentation-shaped schema
// (two quantitative LHS attributes + one categorical criterion), where
// the naive per-candidate table scan is quadratic in the candidate
// count. Mine uses it automatically when the table has at most three
// attributes.
type cube struct {
	dims []int
	// pre[k] for the third-dimension slice k holds 2D prefix sums over
	// the first two dimensions: pre[k][(i+1)*(d1+1)+(j+1)] = count of
	// tuples with a0 <= i, a1 <= j, a2 == k. With fewer than three
	// attributes the missing dimensions have size 1.
	pre [][]int
	n   int
}

// newCube builds the histogram from a binned table.
func newCube(tb *dataset.Table, bins []int) *cube {
	dims := []int{1, 1, 1}
	for i := 0; i < len(bins) && i < 3; i++ {
		dims[i] = bins[i]
	}
	d0, d1, d2 := dims[0], dims[1], dims[2]
	counts := make([][]int, d2)
	for k := range counts {
		counts[k] = make([]int, d0*d1)
	}
	at := func(row dataset.Tuple, attr, dim int) int {
		if attr >= len(row) {
			return 0
		}
		v := int(row[attr])
		if v < 0 {
			v = 0
		}
		if v >= dim {
			v = dim - 1
		}
		return v
	}
	for r := 0; r < tb.Len(); r++ {
		row := tb.Row(r)
		i := at(row, 0, d0)
		j := at(row, 1, d1)
		k := at(row, 2, d2)
		counts[k][i*d1+j]++
	}
	pre := make([][]int, d2)
	for k := 0; k < d2; k++ {
		p := make([]int, (d0+1)*(d1+1))
		for i := 0; i < d0; i++ {
			for j := 0; j < d1; j++ {
				p[(i+1)*(d1+1)+(j+1)] = counts[k][i*d1+j] +
					p[i*(d1+1)+(j+1)] + p[(i+1)*(d1+1)+j] - p[i*(d1+1)+j]
			}
		}
		pre[k] = p
	}
	return &cube{dims: dims, pre: pre, n: tb.Len()}
}

// count returns the number of tuples matching the conjunction of
// intervals. Attributes not constrained default to their full range.
func (c *cube) count(ivs []Interval) int {
	lo := []int{0, 0, 0}
	hi := []int{c.dims[0] - 1, c.dims[1] - 1, c.dims[2] - 1}
	for _, iv := range ivs {
		if iv.Attr < 0 || iv.Attr > 2 {
			return 0
		}
		if iv.Lo > lo[iv.Attr] {
			lo[iv.Attr] = iv.Lo
		}
		if iv.Hi < hi[iv.Attr] {
			hi[iv.Attr] = iv.Hi
		}
	}
	for a := 0; a < 3; a++ {
		if lo[a] > hi[a] {
			return 0
		}
	}
	d1 := c.dims[1]
	total := 0
	for k := lo[2]; k <= hi[2]; k++ {
		p := c.pre[k]
		total += p[(hi[0]+1)*(d1+1)+(hi[1]+1)] -
			p[lo[0]*(d1+1)+(hi[1]+1)] -
			p[(hi[0]+1)*(d1+1)+lo[1]] +
			p[lo[0]*(d1+1)+lo[1]]
	}
	return total
}

// support returns the fraction of tuples matching the conjunction.
func (c *cube) support(ivs []Interval) float64 {
	if c.n == 0 {
		return 0
	}
	return float64(c.count(ivs)) / float64(c.n)
}
