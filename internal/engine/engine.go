// Package engine implements the special-purpose association rule engine
// of paper §3.2 (Figure 3): mining two-dimensional association rules
// directly from the BinArray in a single scan of its cells, plus the
// threshold enumeration structure of §3.7 (Figure 10) that the heuristic
// optimizer searches.
//
// Because the BinArray is retained in memory, applying different support
// or confidence thresholds — the "re-mining" of the feedback loop — never
// touches the source data again.
package engine

import (
	"fmt"
	"sort"

	"arcs/internal/counts"
	"arcs/internal/rules"
)

// GenAssociationRules derives all cell rules X=i ∧ Y=j ⇒ G=seg whose
// support and confidence meet the thresholds, by checking each occupied
// cell of the BinArray (Figure 3). minSupport is a fraction of N;
// minConfidence is a fraction of the cell total. Rules are returned in
// deterministic row-major cell order.
func GenAssociationRules(ba counts.Backend, seg int, minSupport, minConfidence float64) ([]rules.CellRule, error) {
	if seg < 0 || seg >= ba.NSeg() {
		return nil, fmt.Errorf("engine: criterion value %d out of range 0..%d", seg, ba.NSeg()-1)
	}
	if minSupport < 0 || minSupport > 1 {
		return nil, fmt.Errorf("engine: min support %g outside [0, 1]", minSupport)
	}
	if minConfidence < 0 || minConfidence > 1 {
		return nil, fmt.Errorf("engine: min confidence %g outside [0, 1]", minConfidence)
	}
	// Following Figure 3, the support threshold is converted to a count
	// once, so the inner loop is integer-only.
	minCount := minSupport * float64(ba.N())
	var out []rules.CellRule
	ba.Occupied(seg, func(x, y int, segCount, cellTotal uint32) {
		if float64(segCount) < minCount {
			return
		}
		conf := float64(segCount) / float64(cellTotal)
		if conf < minConfidence {
			return
		}
		out = append(out, rules.CellRule{
			X: x, Y: y, Seg: seg,
			Support:    float64(segCount) / float64(ba.N()),
			Confidence: conf,
		})
	})
	return out, nil
}

// GenInterestingRules mines cell rules using the "greater-than-expected
// value" interest measure of Srikant & Agrawal that the paper discusses
// in §1.1: instead of an absolute confidence floor, a cell qualifies
// when its confidence exceeds the criterion value's global prior by the
// factor minLift (e.g. 1.5 = half again more likely than the base
// rate). This suits segmentation criteria whose base rates differ
// wildly, where one absolute confidence threshold over- or
// under-selects.
func GenInterestingRules(ba counts.Backend, seg int, minSupport, minLift float64) ([]rules.CellRule, error) {
	if seg < 0 || seg >= ba.NSeg() {
		return nil, fmt.Errorf("engine: criterion value %d out of range 0..%d", seg, ba.NSeg()-1)
	}
	if minSupport < 0 || minSupport > 1 {
		return nil, fmt.Errorf("engine: min support %g outside [0, 1]", minSupport)
	}
	if minLift <= 0 {
		return nil, fmt.Errorf("engine: min lift must be positive, got %g", minLift)
	}
	if ba.N() == 0 {
		return nil, nil
	}
	prior := float64(ba.SegmentTotal(seg)) / float64(ba.N())
	minConf := minLift * prior
	if minConf > 1 {
		return nil, nil // unreachable bar: no cell can qualify
	}
	return GenAssociationRules(ba, seg, minSupport, minConf)
}

// Thresholds is the ordered structure of Figure 10: the unique support
// values occurring in the binned data for one criterion value, each with
// the list of unique confidence values of the cells at that support.
// The heuristic optimizer walks supports from low to high, trying only
// thresholds that actually appear in the data.
type Thresholds struct {
	supports []float64
	// confsAt[i] holds the sorted unique confidences of cells whose
	// support equals supports[i].
	confsAt [][]float64
	// cells holds (support, confidence) per occupied cell, sorted by
	// support then confidence, for at-or-above queries.
	cells []supConf
}

type supConf struct{ sup, conf float64 }

// NewThresholds scans the BinArray once and builds the threshold
// structure for criterion value seg.
func NewThresholds(ba counts.Backend, seg int) (*Thresholds, error) {
	if seg < 0 || seg >= ba.NSeg() {
		return nil, fmt.Errorf("engine: criterion value %d out of range 0..%d", seg, ba.NSeg()-1)
	}
	t := &Thresholds{}
	n := float64(ba.N())
	if n == 0 {
		return t, nil
	}
	ba.Occupied(seg, func(x, y int, segCount, cellTotal uint32) {
		t.cells = append(t.cells, supConf{
			sup:  float64(segCount) / n,
			conf: float64(segCount) / float64(cellTotal),
		})
	})
	sort.Slice(t.cells, func(i, j int) bool {
		if t.cells[i].sup != t.cells[j].sup {
			return t.cells[i].sup < t.cells[j].sup
		}
		return t.cells[i].conf < t.cells[j].conf
	})
	for i := 0; i < len(t.cells); {
		j := i
		sup := t.cells[i].sup
		var confs []float64
		for ; j < len(t.cells) && t.cells[j].sup == sup; j++ {
			if len(confs) == 0 || confs[len(confs)-1] != t.cells[j].conf {
				confs = append(confs, t.cells[j].conf)
			}
		}
		t.supports = append(t.supports, sup)
		t.confsAt = append(t.confsAt, confs)
		i = j
	}
	return t, nil
}

// Supports returns the unique support values in ascending order. The
// returned slice is shared; callers must not modify it.
func (t *Thresholds) Supports() []float64 { return t.supports }

// ConfidencesAt returns the unique confidence values of cells whose
// support equals the i-th unique support. The slice is shared.
func (t *Thresholds) ConfidencesAt(i int) []float64 { return t.confsAt[i] }

// ConfidencesAtOrAbove returns the sorted unique confidence values among
// cells whose support is at least sup — the candidate confidence
// thresholds that can change the rule set once the support threshold is
// fixed. As the paper observes, the variability of confidences shrinks as
// support rises.
func (t *Thresholds) ConfidencesAtOrAbove(sup float64) []float64 {
	start := sort.Search(len(t.cells), func(i int) bool { return t.cells[i].sup >= sup })
	seen := make(map[float64]struct{})
	var out []float64
	for _, sc := range t.cells[start:] {
		if _, dup := seen[sc.conf]; !dup {
			seen[sc.conf] = struct{}{}
			out = append(out, sc.conf)
		}
	}
	sort.Float64s(out)
	return out
}

// NumCells reports how many occupied cells contributed to the structure.
func (t *Thresholds) NumCells() int { return len(t.cells) }
