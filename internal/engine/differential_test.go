package engine

import (
	"math"
	"math/rand"
	"testing"

	"arcs/internal/apriori"
	"arcs/internal/binarray"
	"arcs/internal/dataset"
	"arcs/internal/rules"
)

// TestEngineMatchesApriori cross-validates the special-purpose 2D engine
// against the generic Apriori miner: on the same binned data, the cell
// rules X=i ∧ Y=j ⇒ G=g that the engine emits must be exactly the
// {x, y} ⇒ {g} rules Apriori finds at equivalent thresholds, with equal
// support and confidence. This is the paper's §3.2 claim that the
// BinArray engine is a faster specialization of, not a departure from,
// standard association rule mining.
func TestEngineMatchesApriori(t *testing.T) {
	rng := rand.New(rand.NewSource(1997))
	const (
		nx, ny, nseg = 4, 4, 2
		nTuples      = 400
	)
	for trial := 0; trial < 10; trial++ {
		// Random binned data over (x, y, g).
		schema := dataset.NewSchema(
			dataset.Attribute{Name: "x", Kind: dataset.Quantitative},
			dataset.Attribute{Name: "y", Kind: dataset.Quantitative},
			dataset.Attribute{Name: "g", Kind: dataset.Quantitative},
		)
		tb := dataset.NewTable(schema)
		ba, err := binarray.New(nx, ny, nseg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < nTuples; i++ {
			x, y, g := rng.Intn(nx), rng.Intn(ny), rng.Intn(nseg)
			tb.MustAppend(dataset.Tuple{float64(x), float64(y), float64(g)})
			ba.Add(x, y, g)
		}

		minSup := 0.005 + rng.Float64()*0.02
		minConf := 0.3 + rng.Float64()*0.3

		seg := rng.Intn(nseg)
		engineRules, err := GenAssociationRules(ba, seg, minSup, minConf)
		if err != nil {
			t.Fatal(err)
		}

		aprioriRules, err := apriori.Mine(tb, apriori.Config{
			MinSupport:     minSup,
			MinConfidence:  minConf,
			MaxItemsetSize: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Filter Apriori's output down to {x=i, y=j} => {g=seg}.
		type key struct{ x, y int }
		fromApriori := map[key]rules.Rule{}
		for _, r := range aprioriRules {
			if len(r.X) != 2 || len(r.Y) != 1 {
				continue
			}
			if r.Y[0].Attr != 2 || r.Y[0].Val != seg {
				continue
			}
			if r.X[0].Attr != 0 || r.X[1].Attr != 1 {
				continue
			}
			fromApriori[key{r.X[0].Val, r.X[1].Val}] = r
		}

		if len(fromApriori) != len(engineRules) {
			t.Fatalf("trial %d (sup %.3f conf %.2f): engine found %d rules, apriori %d",
				trial, minSup, minConf, len(engineRules), len(fromApriori))
		}
		for _, er := range engineRules {
			ar, ok := fromApriori[key{er.X, er.Y}]
			if !ok {
				t.Fatalf("trial %d: engine rule (%d,%d) missing from apriori", trial, er.X, er.Y)
			}
			if math.Abs(er.Support-ar.Support) > 1e-12 {
				t.Errorf("trial %d: support %v vs %v at (%d,%d)", trial, er.Support, ar.Support, er.X, er.Y)
			}
			if math.Abs(er.Confidence-ar.Confidence) > 1e-12 {
				t.Errorf("trial %d: confidence %v vs %v at (%d,%d)", trial, er.Confidence, ar.Confidence, er.X, er.Y)
			}
		}
	}
}
