package engine

import (
	"math"
	"testing"

	"arcs/internal/binarray"
)

// buildBA constructs a 3x3 BinArray with 2 segments from explicit counts.
// counts[seg][x][y].
func buildBA(t *testing.T, counts [2][3][3]int) *binarray.BinArray {
	t.Helper()
	ba, err := binarray.New(3, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	for seg := 0; seg < 2; seg++ {
		for x := 0; x < 3; x++ {
			for y := 0; y < 3; y++ {
				for n := 0; n < counts[seg][x][y]; n++ {
					ba.Add(x, y, seg)
				}
			}
		}
	}
	return ba
}

func TestGenAssociationRulesThresholds(t *testing.T) {
	// Segment 0 has 10 tuples at (0,0), 5 at (1,1), 1 at (2,2).
	// Segment 1 adds 10 at (1,1) so that cell's confidence for seg 0 is 1/3.
	ba := buildBA(t, [2][3][3]int{
		{{10, 0, 0}, {0, 5, 0}, {0, 0, 1}},
		{{0, 0, 0}, {0, 10, 0}, {0, 0, 0}},
	})
	// N = 26. Supports: (0,0)=10/26≈.385, (1,1)=5/26≈.192, (2,2)=1/26≈.038.
	got, err := GenAssociationRules(ba, 0, 0.1, 0.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("minSup 0.1: got %d rules, want 2 (cells (0,0) and (1,1)): %v", len(got), got)
	}
	// Confidence filter: (1,1) has conf 5/15 = 1/3; requiring 0.5 drops it.
	got, err = GenAssociationRules(ba, 0, 0.1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].X != 0 || got[0].Y != 0 {
		t.Fatalf("minConf 0.5: got %v, want only cell (0,0)", got)
	}
	if math.Abs(got[0].Support-10.0/26) > 1e-12 {
		t.Errorf("support = %v", got[0].Support)
	}
	if got[0].Confidence != 1 {
		t.Errorf("confidence = %v", got[0].Confidence)
	}
}

func TestGenAssociationRulesZeroThresholdsReturnAllOccupied(t *testing.T) {
	ba := buildBA(t, [2][3][3]int{
		{{1, 0, 1}, {0, 1, 0}, {1, 0, 1}},
		{},
	})
	got, err := GenAssociationRules(ba, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("got %d rules, want 5", len(got))
	}
	// Deterministic row-major order.
	if got[0].X != 0 || got[0].Y != 0 || got[1].X != 0 || got[1].Y != 2 {
		t.Errorf("order not row-major: %v", got)
	}
}

func TestGenAssociationRulesValidation(t *testing.T) {
	ba := buildBA(t, [2][3][3]int{})
	if _, err := GenAssociationRules(ba, 5, 0.1, 0.1); err == nil {
		t.Error("bad segment should error")
	}
	if _, err := GenAssociationRules(ba, 0, -0.1, 0.1); err == nil {
		t.Error("negative support should error")
	}
	if _, err := GenAssociationRules(ba, 0, 0.1, 1.5); err == nil {
		t.Error("confidence > 1 should error")
	}
}

func TestGenAssociationRulesOtherSegment(t *testing.T) {
	ba := buildBA(t, [2][3][3]int{
		{{5, 0, 0}, {0, 0, 0}, {0, 0, 0}},
		{{0, 0, 0}, {0, 0, 0}, {0, 0, 5}},
	})
	got, err := GenAssociationRules(ba, 1, 0.1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].X != 2 || got[0].Y != 2 || got[0].Seg != 1 {
		t.Fatalf("segment 1 rules = %v", got)
	}
}

func TestThresholdsStructure(t *testing.T) {
	// Three occupied seg-0 cells with distinct supports; one shares a
	// support value with another but differs in confidence.
	ba := buildBA(t, [2][3][3]int{
		{{4, 0, 0}, {0, 4, 0}, {0, 0, 2}},
		{{0, 0, 0}, {0, 4, 0}, {0, 0, 0}},
	})
	// N = 14. Supports: (0,0) 4/14, (1,1) 4/14, (2,2) 2/14.
	// Confidences: (0,0) 1.0, (1,1) 0.5, (2,2) 1.0.
	th, err := NewThresholds(ba, 0)
	if err != nil {
		t.Fatal(err)
	}
	sups := th.Supports()
	if len(sups) != 2 {
		t.Fatalf("unique supports = %v, want 2", sups)
	}
	if sups[0] >= sups[1] {
		t.Error("supports not ascending")
	}
	// The shared support 4/14 has two confidences: 0.5 and 1.0.
	confs := th.ConfidencesAt(1)
	if len(confs) != 2 || confs[0] != 0.5 || confs[1] != 1 {
		t.Errorf("ConfidencesAt(1) = %v", confs)
	}
	if th.NumCells() != 3 {
		t.Errorf("NumCells = %d", th.NumCells())
	}
}

func TestThresholdsAtOrAbove(t *testing.T) {
	ba := buildBA(t, [2][3][3]int{
		{{4, 0, 0}, {0, 4, 0}, {0, 0, 2}},
		{{0, 0, 0}, {0, 4, 0}, {0, 0, 0}},
	})
	th, err := NewThresholds(ba, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Above the low support only the two 4/14 cells remain, with
	// confidences {0.5, 1.0}.
	confs := th.ConfidencesAtOrAbove(3.0 / 14)
	if len(confs) != 2 || confs[0] != 0.5 || confs[1] != 1 {
		t.Errorf("ConfidencesAtOrAbove = %v", confs)
	}
	// A threshold above every support yields nothing.
	if confs := th.ConfidencesAtOrAbove(0.9); len(confs) != 0 {
		t.Errorf("expected empty, got %v", confs)
	}
}

func TestThresholdsEmptyAndInvalid(t *testing.T) {
	ba, _ := binarray.New(2, 2, 2)
	th, err := NewThresholds(ba, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(th.Supports()) != 0 || th.NumCells() != 0 {
		t.Error("empty BinArray should yield empty thresholds")
	}
	if _, err := NewThresholds(ba, 9); err == nil {
		t.Error("bad segment should error")
	}
}

func TestMiningMonotoneInSupport(t *testing.T) {
	// Raising the support threshold can only shrink the rule set.
	ba := buildBA(t, [2][3][3]int{
		{{6, 3, 1}, {2, 8, 0}, {0, 1, 4}},
		{{1, 1, 1}, {1, 1, 1}, {1, 1, 1}},
	})
	prev := -1
	for _, sup := range []float64{0, 0.05, 0.1, 0.2, 0.5} {
		got, err := GenAssociationRules(ba, 0, sup, 0)
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && len(got) > prev {
			t.Errorf("rule count grew from %d to %d when support rose to %v", prev, len(got), sup)
		}
		prev = len(got)
	}
}

func TestGenInterestingRules(t *testing.T) {
	// Prior of seg 0 is 10/30; cells must beat lift*prior.
	ba := buildBA(t, [2][3][3]int{
		{{8, 0, 0}, {0, 2, 0}, {0, 0, 0}},
		{{2, 0, 0}, {0, 8, 0}, {0, 0, 10}},
	})
	// prior = 10/30 = 1/3. Cell (0,0): conf 0.8 (lift 2.4);
	// cell (1,1): conf 0.2 (lift 0.6).
	got, err := GenInterestingRules(ba, 0, 0, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].X != 0 || got[0].Y != 0 {
		t.Fatalf("interesting rules = %v, want only cell (0,0)", got)
	}
	// Lift 0.5 admits both occupied seg-0 cells.
	got, err = GenInterestingRules(ba, 0, 0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("lift 0.5 rules = %v, want 2", got)
	}
	// An unreachable bar yields nothing.
	got, err = GenInterestingRules(ba, 0, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("lift 10 rules = %v", got)
	}
}

func TestGenInterestingRulesValidation(t *testing.T) {
	ba := buildBA(t, [2][3][3]int{})
	if _, err := GenInterestingRules(ba, 9, 0, 1); err == nil {
		t.Error("bad segment should error")
	}
	if _, err := GenInterestingRules(ba, 0, -1, 1); err == nil {
		t.Error("bad support should error")
	}
	if _, err := GenInterestingRules(ba, 0, 0, 0); err == nil {
		t.Error("zero lift should error")
	}
	// Empty BinArray yields nothing without error.
	empty, _ := binarray.New(2, 2, 2)
	got, err := GenInterestingRules(empty, 0, 0, 1)
	if err != nil || len(got) != 0 {
		t.Errorf("empty: %v, %v", got, err)
	}
}

// TestGenInterestingRulesZeroPrior: a criterion value with no tuples at
// all (prior 0) lowers the bar to confidence >= 0, but no cell is
// occupied for that segment, so the result is empty — not an error and
// not a division blow-up.
func TestGenInterestingRulesZeroPrior(t *testing.T) {
	ba := buildBA(t, [2][3][3]int{
		{}, // segment 0: empty
		{{5, 0, 0}, {0, 5, 0}, {0, 0, 5}},
	})
	got, err := GenInterestingRules(ba, 0, 0, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("zero-prior segment produced rules %v, want none", got)
	}
	// The populated segment is unaffected by its sibling being empty:
	// prior = 15/15 = 1, so lift 1 admits every occupied cell.
	got, err = GenInterestingRules(ba, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Errorf("segment 1 rules = %v, want 3", got)
	}
}

// TestGenInterestingRulesLiftExactlyAtBar: a cell whose lift equals
// minLift exactly is admitted — the threshold comparison is inclusive,
// matching GenAssociationRules' handling of minConfidence.
func TestGenInterestingRulesLiftExactlyAtBar(t *testing.T) {
	// prior = 10/20 = 0.5 exactly. Cell (0,0): conf 5/5 = 1.0, lift 2.0;
	// cell (1,1): conf 5/15 = 1/3, lift 2/3.
	ba := buildBA(t, [2][3][3]int{
		{{5, 0, 0}, {0, 5, 0}, {0, 0, 0}},
		{{0, 0, 0}, {0, 10, 0}, {0, 0, 0}},
	})
	got, err := GenInterestingRules(ba, 0, 0, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].X != 0 || got[0].Y != 0 {
		t.Fatalf("lift exactly at bar: rules = %v, want only cell (0,0)", got)
	}
	// Nudging the bar above the exact lift excludes the cell.
	got, err = GenInterestingRules(ba, 0, 0, 2.0000001)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("lift just above bar: rules = %v, want none", got)
	}
}
