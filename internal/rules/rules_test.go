package rules

import (
	"strings"
	"testing"
)

func TestCellRuleString(t *testing.T) {
	r := CellRule{X: 3, Y: 7, Seg: 1, Support: 0.05, Confidence: 0.8}
	s := r.String()
	for _, want := range []string{"X=3", "Y=7", "G=1", "0.0500", "0.80"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestClusteredRuleString(t *testing.T) {
	r := ClusteredRule{
		XAttr: "age", YAttr: "salary", CritAttr: "group", CritValue: "A",
		XLo: 40, XHi: 42, YLo: 40000, YHi: 60000,
	}
	got := r.String()
	want := "40 <= age < 42 AND 40000 <= salary < 60000 => group = A"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestClusteredRuleCovers(t *testing.T) {
	r := ClusteredRule{XLo: 40, XHi: 42, YLo: 40000, YHi: 60000}
	cases := []struct {
		x, y float64
		want bool
	}{
		{40, 40000, true},   // inclusive lower corner
		{41.9, 59999, true}, // interior
		{42, 50000, false},  // exclusive upper x
		{41, 60000, false},  // exclusive upper y
		{39, 50000, false},
	}
	for _, c := range cases {
		if got := r.Covers(c.x, c.y); got != c.want {
			t.Errorf("Covers(%v, %v) = %v, want %v", c.x, c.y, got, c.want)
		}
	}
}

func TestClusteredRuleArea(t *testing.T) {
	r := ClusteredRule{XLoBin: 2, XHiBin: 4, YLoBin: 1, YHiBin: 1}
	if got := r.Area(); got != 3 {
		t.Errorf("Area = %d, want 3", got)
	}
	single := ClusteredRule{XLoBin: 0, XHiBin: 0, YLoBin: 0, YHiBin: 0}
	if got := single.Area(); got != 1 {
		t.Errorf("single-cell Area = %d, want 1", got)
	}
}

func TestGenericRuleString(t *testing.T) {
	r := Rule{
		X:          Itemset{{Attr: 0, Val: 3}, {Attr: 1, Val: 5}},
		Y:          Itemset{{Attr: 2, Val: 1}},
		Support:    0.1,
		Confidence: 0.9,
	}
	s := r.String()
	for _, want := range []string{"a0=3", "a1=5", "a2=1", "=>"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
