// Package rules defines the association rule model shared across ARCS:
// cell rules (one grid cell, the output of the mining engine, §3.2) and
// clustered association rules (rectangular ranges of cells converted back
// to attribute value ranges, §2.1). It also carries the generic
// itemset-style rule used by the Apriori substrate.
package rules

import (
	"fmt"
	"strings"
)

// CellRule is a two-dimensional association rule over binned data:
//
//	X = i  AND  Y = j  =>  G = seg
//
// where i and j are bin numbers. It is the unit the BitOp grid is built
// from.
type CellRule struct {
	X, Y int // bin numbers of the two LHS attributes
	Seg  int // category code of the RHS criterion value

	Support    float64 // |(i, j, Gk)| / N
	Confidence float64 // |(i, j, Gk)| / |(i, j)|
}

// String renders the binned rule for diagnostics.
func (r CellRule) String() string {
	return fmt.Sprintf("X=%d AND Y=%d => G=%d (sup %.4f, conf %.2f)",
		r.X, r.Y, r.Seg, r.Support, r.Confidence)
}

// ClusteredRule is the user-facing output of ARCS: a conjunction of two
// attribute ranges implying a criterion value,
//
//	xlo <= XAttr < xhi  AND  ylo <= YAttr < yhi  =>  CritAttr = CritValue
//
// Bin bounds are half-open in value space, matching the binners.
type ClusteredRule struct {
	XAttr, YAttr string // LHS attribute names
	CritAttr     string // RHS attribute name
	CritValue    string // RHS category label

	// Bin-space rectangle, inclusive on both ends.
	XLoBin, XHiBin int
	YLoBin, YHiBin int

	// Value-space ranges, half-open [lo, hi).
	XLo, XHi float64
	YLo, YHi float64

	// Support and Confidence are the aggregate measures of the cluster:
	// the summed segment count of its cells over N, and over the summed
	// cell totals, respectively. Clustered rules always meet the minimum
	// thresholds because every member cell does (§2.1).
	Support    float64
	Confidence float64
}

// String renders the rule in the paper's style, e.g.
//
//	40 <= age < 42 AND 40000 <= salary < 60000 => group = A
func (r ClusteredRule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%g <= %s < %g AND %g <= %s < %g => %s = %s",
		r.XLo, r.XAttr, r.XHi, r.YLo, r.YAttr, r.YHi, r.CritAttr, r.CritValue)
	return b.String()
}

// Covers reports whether an (x, y) point in value space satisfies the
// rule's LHS.
func (r ClusteredRule) Covers(x, y float64) bool {
	return r.XLo <= x && x < r.XHi && r.YLo <= y && y < r.YHi
}

// Area reports the number of grid cells the rule spans.
func (r ClusteredRule) Area() int {
	return (r.XHiBin - r.XLoBin + 1) * (r.YHiBin - r.YLoBin + 1)
}

// Item is one attribute=value term of a generic association rule, used by
// the Apriori substrate. Attr is the schema position; Val is the encoded
// value (bin number or category code).
type Item struct {
	Attr int
	Val  int
}

// Itemset is a sorted set of items. Items are ordered by (Attr, Val);
// constructors in the apriori package maintain the ordering.
type Itemset []Item

// Rule is a generic association rule X => Y over items, produced by the
// Apriori substrate (the "existing algorithms" of §3.2 that ARCS's
// special-purpose engine replaces).
type Rule struct {
	X, Y       Itemset
	Support    float64
	Confidence float64
	// Lift is Confidence / support(Y): how much more likely Y is given
	// X than unconditionally. Values above 1 mark positive association.
	Lift float64
}

// String renders the generic rule.
func (r Rule) String() string {
	render := func(is Itemset) string {
		parts := make([]string, len(is))
		for i, it := range is {
			parts[i] = fmt.Sprintf("a%d=%d", it.Attr, it.Val)
		}
		return strings.Join(parts, " AND ")
	}
	return fmt.Sprintf("%s => %s (sup %.4f, conf %.2f)", render(r.X), render(r.Y), r.Support, r.Confidence)
}
