package stats

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSampleKofNBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s, err := SampleKofN(rng, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 5 {
		t.Fatalf("len = %d", len(s))
	}
	seen := map[int]bool{}
	for _, i := range s {
		if i < 0 || i >= 10 {
			t.Errorf("index %d out of range", i)
		}
		if seen[i] {
			t.Errorf("duplicate index %d", i)
		}
		seen[i] = true
	}
}

func TestSampleKofNEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if s, err := SampleKofN(rng, 0, 10); err != nil || len(s) != 0 {
		t.Errorf("k=0: %v, %v", s, err)
	}
	s, err := SampleKofN(rng, 10, 10)
	if err != nil || len(s) != 10 {
		t.Fatalf("k=n: %v, %v", s, err)
	}
	seen := map[int]bool{}
	for _, i := range s {
		seen[i] = true
	}
	if len(seen) != 10 {
		t.Error("k=n sample must be a permutation")
	}
	if _, err := SampleKofN(rng, 11, 10); err == nil {
		t.Error("k>n should error")
	}
	if _, err := SampleKofN(rng, -1, 10); err == nil {
		t.Error("negative k should error")
	}
}

func TestSampleKofNPropertyDistinctInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(kRaw, nRaw uint16) bool {
		n := int(nRaw)%2000 + 1
		k := int(kRaw) % (n + 1)
		s, err := SampleKofN(rng, k, n)
		if err != nil {
			return false
		}
		if len(s) != k {
			return false
		}
		seen := make(map[int]bool, k)
		for _, i := range s {
			if i < 0 || i >= n || seen[i] {
				return false
			}
			seen[i] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSampleKofNUniformity(t *testing.T) {
	// Sparse path (Floyd): each of n=100 items should appear in a k=10
	// sample with probability 0.1. Over 5000 trials each item's count
	// should be near 500.
	rng := rand.New(rand.NewSource(4))
	counts := make([]int, 100)
	const trials = 5000
	for trial := 0; trial < trials; trial++ {
		s, err := SampleKofN(rng, 10, 100)
		if err != nil {
			t.Fatal(err)
		}
		for _, i := range s {
			counts[i]++
		}
	}
	for i, c := range counts {
		if c < 350 || c > 650 {
			t.Errorf("item %d drawn %d times; expected ~500", i, c)
		}
	}
}

func TestRepeatedKofN(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	mean, std, err := RepeatedKofN(rng, 8, 3, 10, func(sample []int) float64 {
		return float64(len(sample))
	})
	if err != nil {
		t.Fatal(err)
	}
	if mean != 3 || std != 0 {
		t.Errorf("mean=%v std=%v, want 3, 0", mean, std)
	}
	if _, _, err := RepeatedKofN(rng, 0, 3, 10, nil); err == nil {
		t.Error("rounds=0 should error")
	}
	if _, _, err := RepeatedKofN(rng, 2, 20, 10, func([]int) float64 { return 0 }); err == nil {
		t.Error("k>n should propagate error")
	}
}

func TestReservoir(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	r := NewReservoir(rng, 10)
	kept := map[int]int{} // slot -> stream pos
	for pos := 0; pos < 1000; pos++ {
		if slot, keep := r.Offer(); keep {
			kept[slot] = pos
		}
	}
	if r.Size() != 10 {
		t.Fatalf("Size = %d", r.Size())
	}
	if r.Seen() != 1000 {
		t.Fatalf("Seen = %d", r.Seen())
	}
	if len(kept) != 10 {
		t.Fatalf("kept %d slots", len(kept))
	}
}

func TestReservoirSmallStream(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	r := NewReservoir(rng, 10)
	for pos := 0; pos < 4; pos++ {
		slot, keep := r.Offer()
		if !keep || slot != pos {
			t.Errorf("pos %d: slot=%d keep=%v; first cap elements must all be kept in order", pos, slot, keep)
		}
	}
	if r.Size() != 4 {
		t.Errorf("Size = %d, want 4", r.Size())
	}
}

func TestReservoirUniformity(t *testing.T) {
	// Each of 100 stream positions should survive in a cap-10 reservoir
	// with probability 0.1.
	rng := rand.New(rand.NewSource(8))
	counts := make([]int, 100)
	const trials = 4000
	for trial := 0; trial < trials; trial++ {
		r := NewReservoir(rng, 10)
		held := make([]int, 10)
		for pos := 0; pos < 100; pos++ {
			if slot, keep := r.Offer(); keep {
				held[slot] = pos
			}
		}
		for _, pos := range held {
			counts[pos]++
		}
	}
	for i, c := range counts {
		if c < 280 || c > 520 {
			t.Errorf("pos %d survived %d times; expected ~400", i, c)
		}
	}
}

func TestReservoirNegativeCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	r := NewReservoir(rng, -5)
	if _, keep := r.Offer(); keep {
		t.Error("zero-capacity reservoir must not keep anything")
	}
}
