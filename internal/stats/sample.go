package stats

import (
	"fmt"
	"math/rand"
)

// SampleKofN draws k distinct indices uniformly from [0, n) using the
// supplied RNG. It is the primitive behind the verifier's "repeated k out
// of n sampling" (paper §3.6). For k close to n it uses a partial
// Fisher-Yates shuffle; for sparse draws it uses Floyd's algorithm, which
// needs O(k) memory regardless of n.
func SampleKofN(rng *rand.Rand, k, n int) ([]int, error) {
	if k < 0 || n < 0 {
		return nil, fmt.Errorf("stats: invalid sample k=%d n=%d", k, n)
	}
	if k > n {
		return nil, fmt.Errorf("stats: cannot sample %d of %d without replacement", k, n)
	}
	if k == 0 {
		return nil, nil
	}
	if k*3 >= n {
		// Dense draw: partial Fisher-Yates over an explicit index array.
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		for i := 0; i < k; i++ {
			j := i + rng.Intn(n-i)
			idx[i], idx[j] = idx[j], idx[i]
		}
		return idx[:k:k], nil
	}
	// Sparse draw: Floyd's algorithm.
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := rng.Intn(j + 1)
		if _, dup := chosen[t]; dup {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	return out, nil
}

// RepeatedKofN invokes measure on `rounds` independent k-of-n samples and
// returns the mean and population standard deviation of the measured
// values. This is the "stronger statistical technique" of §3.6: averaging
// over repeated samples yields a better approximation of the true error
// than a single draw.
func RepeatedKofN(rng *rand.Rand, rounds, k, n int, measure func(sample []int) float64) (mean, std float64, err error) {
	if rounds <= 0 {
		return 0, 0, fmt.Errorf("stats: rounds must be positive, got %d", rounds)
	}
	vals := make([]float64, rounds)
	for r := 0; r < rounds; r++ {
		sample, err := SampleKofN(rng, k, n)
		if err != nil {
			return 0, 0, err
		}
		vals[r] = measure(sample)
	}
	return Mean(vals), StdDev(vals), nil
}

// Reservoir maintains a uniform random sample of fixed capacity over a
// stream of unknown length (Vitter's algorithm R). The verifier uses it
// to sample tuples from streaming sources without materializing them.
type Reservoir struct {
	rng  *rand.Rand
	cap  int
	seen int
	keep []int // indices of kept stream positions, parallel to items
}

// NewReservoir creates a reservoir of the given capacity.
func NewReservoir(rng *rand.Rand, capacity int) *Reservoir {
	if capacity < 0 {
		capacity = 0
	}
	return &Reservoir{rng: rng, cap: capacity}
}

// Offer presents the next stream element (by position) to the reservoir.
// It returns (slot, true) when the element should be stored at slot in
// the caller's parallel buffer, or (0, false) when it is discarded.
func (r *Reservoir) Offer() (slot int, keep bool) {
	pos := r.seen
	r.seen++
	if pos < r.cap {
		r.keep = append(r.keep, pos)
		return pos, true
	}
	j := r.rng.Intn(pos + 1)
	if j < r.cap {
		r.keep[j] = pos
		return j, true
	}
	return 0, false
}

// Size reports how many elements are currently held.
func (r *Reservoir) Size() int { return len(r.keep) }

// Seen reports how many elements have been offered in total.
func (r *Reservoir) Seen() int { return r.seen }
