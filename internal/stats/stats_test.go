package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestLog2Guarded(t *testing.T) {
	if Log2(0) != 0 || Log2(-3) != 0 {
		t.Error("Log2 of non-positive should be 0")
	}
	if !approx(Log2(8), 3, 1e-12) {
		t.Errorf("Log2(8) = %v", Log2(8))
	}
}

func TestEntropy(t *testing.T) {
	cases := []struct {
		counts []float64
		want   float64
	}{
		{[]float64{1, 1}, 1},
		{[]float64{1, 1, 1, 1}, 2},
		{[]float64{5, 0}, 0},
		{[]float64{}, 0},
		{[]float64{0, 0}, 0},
		{[]float64{3, 1}, 0.8112781244591328},
	}
	for _, c := range cases {
		if got := Entropy(c.counts); !approx(got, c.want, 1e-12) {
			t.Errorf("Entropy(%v) = %v, want %v", c.counts, got, c.want)
		}
	}
	if got := EntropyInts([]int{1, 1}); !approx(got, 1, 1e-12) {
		t.Errorf("EntropyInts = %v", got)
	}
}

func TestEntropyNonNegativeAndBounded(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		counts := make([]float64, len(raw))
		nonzero := 0
		for i, r := range raw {
			counts[i] = float64(r)
			if r > 0 {
				nonzero++
			}
		}
		h := Entropy(counts)
		if h < 0 {
			return false
		}
		if nonzero > 0 && h > math.Log2(float64(len(counts)))+1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGini(t *testing.T) {
	if got := Gini([]float64{1, 1}); !approx(got, 0.5, 1e-12) {
		t.Errorf("Gini uniform-2 = %v", got)
	}
	if got := Gini([]float64{7, 0}); !approx(got, 0, 1e-12) {
		t.Errorf("Gini pure = %v", got)
	}
	if got := Gini(nil); got != 0 {
		t.Errorf("Gini(nil) = %v", got)
	}
}

func TestInfoGainPerfectSplit(t *testing.T) {
	// Parent: 2 classes 50/50 (entropy 1). Children pure -> gain 1.
	children := [][]float64{{10, 0}, {0, 10}}
	if got := InfoGain(children); !approx(got, 1, 1e-12) {
		t.Errorf("InfoGain perfect = %v", got)
	}
	// Useless split: children mirror parent -> gain 0.
	children = [][]float64{{5, 5}, {5, 5}}
	if got := InfoGain(children); !approx(got, 0, 1e-12) {
		t.Errorf("InfoGain useless = %v", got)
	}
	if got := InfoGain(nil); got != 0 {
		t.Errorf("InfoGain(nil) = %v", got)
	}
}

func TestGainRatio(t *testing.T) {
	children := [][]float64{{10, 0}, {0, 10}}
	// Gain 1, split info 1 -> ratio 1.
	if got := GainRatio(children); !approx(got, 1, 1e-12) {
		t.Errorf("GainRatio = %v", got)
	}
	// Single child: split info 0 -> ratio defined as 0.
	if got := GainRatio([][]float64{{5, 5}}); got != 0 {
		t.Errorf("GainRatio single child = %v", got)
	}
}

func TestInfoGainNonNegative(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		children := [][]float64{{float64(a), float64(b)}, {float64(c), float64(d)}}
		return InfoGain(children) >= -1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChiSquare(t *testing.T) {
	// Independent table: chi-square 0.
	indep := [][]float64{{10, 20}, {20, 40}}
	if got := ChiSquare(indep); !approx(got, 0, 1e-9) {
		t.Errorf("ChiSquare independent = %v", got)
	}
	// Perfectly associated 2x2.
	assoc := [][]float64{{50, 0}, {0, 50}}
	if got := ChiSquare(assoc); !approx(got, 100, 1e-9) {
		t.Errorf("ChiSquare associated = %v, want 100", got)
	}
	if got := ChiSquare(nil); got != 0 {
		t.Errorf("ChiSquare(nil) = %v", got)
	}
}

func TestDescriptive(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); !approx(got, 5, 1e-12) {
		t.Errorf("Mean = %v", got)
	}
	if got := Variance(xs); !approx(got, 4, 1e-12) {
		t.Errorf("Variance = %v", got)
	}
	if got := StdDev(xs); !approx(got, 2, 1e-12) {
		t.Errorf("StdDev = %v", got)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("degenerate descriptive stats should be 0")
	}
}

func TestCovarianceCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	cov, err := Covariance(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(cov, 2.5, 1e-12) {
		t.Errorf("Covariance = %v", cov)
	}
	r, err := Correlation(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(r, 1, 1e-12) {
		t.Errorf("Correlation = %v, want 1", r)
	}
	neg := []float64{8, 6, 4, 2}
	r, _ = Correlation(xs, neg)
	if !approx(r, -1, 1e-12) {
		t.Errorf("Correlation = %v, want -1", r)
	}
	if _, err := Covariance(xs, ys[:2]); err == nil {
		t.Error("length mismatch should error")
	}
	flat := []float64{3, 3, 3, 3}
	r, _ = Correlation(xs, flat)
	if r != 0 {
		t.Errorf("Correlation with constant = %v, want 0", r)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("Q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 4 {
		t.Errorf("Q1 = %v", got)
	}
	if got := Quantile(xs, 0.5); !approx(got, 2.5, 1e-12) {
		t.Errorf("median = %v", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile of empty should be NaN")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7})
	if lo != -1 || hi != 7 {
		t.Errorf("MinMax = %v, %v", lo, hi)
	}
	lo, hi = MinMax(nil)
	if !math.IsInf(lo, 1) || !math.IsInf(hi, -1) {
		t.Errorf("MinMax(nil) = %v, %v", lo, hi)
	}
}
