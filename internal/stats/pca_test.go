package stats

import (
	"math"
	"testing"
)

func TestJacobiDiagonal(t *testing.T) {
	a := NewMatrix(2)
	a.Set(0, 0, 3)
	a.Set(1, 1, 7)
	vals, vecs, err := Jacobi(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := map[float64]bool{}
	for _, v := range vals {
		got[math.Round(v)] = true
	}
	if !got[3] || !got[7] {
		t.Errorf("eigenvalues = %v, want {3,7}", vals)
	}
	// Eigenvector matrix of a diagonal matrix is a permutation of identity.
	for j := 0; j < 2; j++ {
		var norm float64
		for i := 0; i < 2; i++ {
			norm += vecs.At(i, j) * vecs.At(i, j)
		}
		if !approx(norm, 1, 1e-9) {
			t.Errorf("eigenvector %d not unit: %v", j, norm)
		}
	}
}

func TestJacobiKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	a := NewMatrix(2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 2)
	vals, vecs, err := Jacobi(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := math.Min(vals[0], vals[1]), math.Max(vals[0], vals[1])
	if !approx(lo, 1, 1e-9) || !approx(hi, 3, 1e-9) {
		t.Errorf("eigenvalues = %v, want 1 and 3", vals)
	}
	// Check A v = lambda v for each eigenpair.
	for j := 0; j < 2; j++ {
		v0, v1 := vecs.At(0, j), vecs.At(1, j)
		av0 := 2*v0 + 1*v1
		av1 := 1*v0 + 2*v1
		if !approx(av0, vals[j]*v0, 1e-8) || !approx(av1, vals[j]*v1, 1e-8) {
			t.Errorf("eigenpair %d fails A v = lambda v", j)
		}
	}
}

func TestJacobiAsymmetricRejected(t *testing.T) {
	a := NewMatrix(2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 5)
	if _, _, err := Jacobi(a, 0); err == nil {
		t.Error("asymmetric matrix should be rejected")
	}
	if _, _, err := Jacobi(NewMatrix(0), 0); err == nil {
		t.Error("empty matrix should be rejected")
	}
}

func TestPCACorrelatedColumns(t *testing.T) {
	// y = 2x exactly: first component explains everything.
	x := []float64{1, 2, 3, 4, 5, 6}
	y := make([]float64, len(x))
	for i := range x {
		y[i] = 2 * x[i]
	}
	comps, err := PCA([][]float64{x, y})
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 2 {
		t.Fatalf("got %d components", len(comps))
	}
	total := comps[0].Variance + comps[1].Variance
	if !approx(comps[0].Variance/total, 1, 1e-9) {
		t.Errorf("first component explains %v of variance, want 1", comps[0].Variance/total)
	}
	// Loadings of the dominant component weight both variables equally
	// (standardized), i.e. |l0| == |l1|.
	l := comps[0].Loadings
	if !approx(math.Abs(l[0]), math.Abs(l[1]), 1e-9) {
		t.Errorf("loadings = %v, want equal magnitude", l)
	}
}

func TestPCAIndependentColumns(t *testing.T) {
	// Orthogonal patterns: variance splits roughly evenly.
	x := []float64{1, 1, -1, -1, 1, -1, -1, 1}
	y := []float64{1, -1, 1, -1, -1, 1, -1, 1}
	comps, err := PCA([][]float64{x, y})
	if err != nil {
		t.Fatal(err)
	}
	ratio := comps[0].Variance / (comps[0].Variance + comps[1].Variance)
	if ratio > 0.7 {
		t.Errorf("independent columns: dominant component explains %v, want near 0.5", ratio)
	}
}

func TestPCAErrors(t *testing.T) {
	if _, err := PCA(nil); err == nil {
		t.Error("empty PCA should error")
	}
	if _, err := PCA([][]float64{{1, 2}, {1}}); err == nil {
		t.Error("ragged PCA should error")
	}
	if _, err := PCA([][]float64{{1}}); err == nil {
		t.Error("single-observation PCA should error")
	}
}

func TestPCAConstantColumn(t *testing.T) {
	x := []float64{5, 5, 5, 5}
	y := []float64{1, 2, 3, 4}
	comps, err := PCA([][]float64{x, y})
	if err != nil {
		t.Fatal(err)
	}
	// The constant column contributes zero variance; total = 1.
	total := 0.0
	for _, c := range comps {
		total += c.Variance
	}
	if !approx(total, 1, 1e-9) {
		t.Errorf("total variance = %v, want 1 (one informative standardized column)", total)
	}
}
