package stats

import (
	"math"
	"testing"
)

func TestGammaPKnownValues(t *testing.T) {
	// P(1, x) = 1 - e^-x (exponential CDF).
	for _, x := range []float64{0.1, 0.5, 1, 2, 5, 10} {
		got, err := GammaP(1, x)
		if err != nil {
			t.Fatal(err)
		}
		want := 1 - math.Exp(-x)
		if math.Abs(got-want) > 1e-10 {
			t.Errorf("P(1, %v) = %v, want %v", x, got, want)
		}
	}
	// P(0.5, x) = erf(sqrt(x)).
	for _, x := range []float64{0.25, 1, 4} {
		got, err := GammaP(0.5, x)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Erf(math.Sqrt(x))
		if math.Abs(got-want) > 1e-10 {
			t.Errorf("P(0.5, %v) = %v, want %v", x, got, want)
		}
	}
	if got, _ := GammaP(3, 0); got != 0 {
		t.Errorf("P(a, 0) = %v", got)
	}
}

func TestGammaPErrors(t *testing.T) {
	if _, err := GammaP(0, 1); err == nil {
		t.Error("a=0 should error")
	}
	if _, err := GammaP(1, -1); err == nil {
		t.Error("x<0 should error")
	}
}

func TestGammaPMonotone(t *testing.T) {
	prev := -1.0
	for x := 0.0; x <= 20; x += 0.5 {
		got, err := GammaP(2.5, x)
		if err != nil {
			t.Fatal(err)
		}
		if got < prev-1e-12 {
			t.Fatalf("P(2.5, %v) = %v decreased from %v", x, got, prev)
		}
		if got < 0 || got > 1 {
			t.Fatalf("P out of [0,1]: %v", got)
		}
		prev = got
	}
	if prev < 0.999 {
		t.Errorf("P(2.5, 20) = %v, want ~1", prev)
	}
}

func TestChiSquareP(t *testing.T) {
	// Chi-square with 1 dof: P(X >= 3.841) ≈ 0.05.
	p, err := ChiSquareP(3.841, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.05) > 0.001 {
		t.Errorf("p(3.841, 1) = %v, want ~0.05", p)
	}
	// 2 dof: P(X >= 5.991) ≈ 0.05.
	p, _ = ChiSquareP(5.991, 2)
	if math.Abs(p-0.05) > 0.001 {
		t.Errorf("p(5.991, 2) = %v, want ~0.05", p)
	}
	// Zero statistic: p = 1.
	p, _ = ChiSquareP(0, 3)
	if p != 1 {
		t.Errorf("p(0, 3) = %v", p)
	}
	if _, err := ChiSquareP(1, 0); err == nil {
		t.Error("dof=0 should error")
	}
	if _, err := ChiSquareP(-1, 1); err == nil {
		t.Error("negative stat should error")
	}
}

func TestChiSquareIndependence(t *testing.T) {
	// Strongly associated table: tiny p.
	assoc := [][]float64{{50, 0}, {0, 50}}
	stat, dof, p, err := ChiSquareIndependence(assoc)
	if err != nil {
		t.Fatal(err)
	}
	if dof != 1 || stat < 90 {
		t.Errorf("stat=%v dof=%d", stat, dof)
	}
	if p > 1e-10 {
		t.Errorf("p = %v, want ~0", p)
	}
	// Independent table: p near 1.
	indep := [][]float64{{10, 20}, {20, 40}}
	_, _, p, err = ChiSquareIndependence(indep)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.99 {
		t.Errorf("independent table p = %v, want ~1", p)
	}
	if _, _, _, err := ChiSquareIndependence([][]float64{{1, 2}}); err == nil {
		t.Error("1-row table should error")
	}
}
