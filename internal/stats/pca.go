package stats

import (
	"errors"
	"math"
	"sort"
)

// Matrix is a dense, square, symmetric matrix stored row-major. It exists
// only to support the eigensolver; it is not a general linear-algebra
// type.
type Matrix struct {
	N    int
	Data []float64 // len N*N
}

// NewMatrix allocates an N x N zero matrix.
func NewMatrix(n int) *Matrix {
	return &Matrix{N: n, Data: make([]float64, n*n)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.N+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.N+j] = v }

// Jacobi diagonalizes a symmetric matrix using cyclic Jacobi rotations.
// It returns the eigenvalues and the matrix of eigenvectors (columns),
// both unsorted. The input matrix is not modified.
func Jacobi(a *Matrix, maxSweeps int) (eigenvalues []float64, eigenvectors *Matrix, err error) {
	n := a.N
	if n == 0 {
		return nil, nil, errors.New("stats: empty matrix")
	}
	// Verify symmetry up to rounding; Jacobi silently corrupts results on
	// asymmetric input.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if math.Abs(a.At(i, j)-a.At(j, i)) > 1e-9*(1+math.Abs(a.At(i, j))) {
				return nil, nil, errors.New("stats: Jacobi requires a symmetric matrix")
			}
		}
	}
	w := NewMatrix(n)
	copy(w.Data, a.Data)
	v := NewMatrix(n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}
	if maxSweeps <= 0 {
		maxSweeps = 64
	}
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.At(i, j) * w.At(i, j)
			}
		}
		if off < 1e-22 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				for k := 0; k < n; k++ {
					wkp, wkq := w.At(k, p), w.At(k, q)
					w.Set(k, p, c*wkp-s*wkq)
					w.Set(k, q, s*wkp+c*wkq)
				}
				for k := 0; k < n; k++ {
					wpk, wqk := w.At(p, k), w.At(q, k)
					w.Set(p, k, c*wpk-s*wqk)
					w.Set(q, k, s*wpk+c*wqk)
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}
	eigenvalues = make([]float64, n)
	for i := 0; i < n; i++ {
		eigenvalues[i] = w.At(i, i)
	}
	return eigenvalues, v, nil
}

// Component is one principal component: its eigenvalue (variance
// explained) and loading vector.
type Component struct {
	Variance float64
	Loadings []float64
}

// PCA performs principal component analysis on column-major data
// (cols[j] is the sample of variable j). Columns are standardized
// (zero mean, unit variance) before the covariance — i.e. the analysis
// runs on the correlation matrix, which is scale-free and appropriate
// when the attributes have incomparable units (age vs. salary).
// Components are returned sorted by decreasing explained variance.
func PCA(cols [][]float64) ([]Component, error) {
	p := len(cols)
	if p == 0 {
		return nil, errors.New("stats: PCA needs at least one column")
	}
	n := len(cols[0])
	for _, c := range cols {
		if len(c) != n {
			return nil, errors.New("stats: PCA columns must have equal length")
		}
	}
	if n < 2 {
		return nil, errors.New("stats: PCA needs at least two observations")
	}
	std := make([][]float64, p)
	for j, c := range cols {
		m, s := Mean(c), StdDev(c)
		out := make([]float64, n)
		if s == 0 {
			// Constant column: contributes nothing.
			std[j] = out
			continue
		}
		for i, x := range c {
			out[i] = (x - m) / s
		}
		std[j] = out
	}
	cov := NewMatrix(p)
	for i := 0; i < p; i++ {
		for j := i; j < p; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += std[i][k] * std[j][k]
			}
			s /= float64(n)
			cov.Set(i, j, s)
			cov.Set(j, i, s)
		}
	}
	vals, vecs, err := Jacobi(cov, 0)
	if err != nil {
		return nil, err
	}
	comps := make([]Component, p)
	for j := 0; j < p; j++ {
		load := make([]float64, p)
		for i := 0; i < p; i++ {
			load[i] = vecs.At(i, j)
		}
		comps[j] = Component{Variance: vals[j], Loadings: load}
	}
	sort.Slice(comps, func(a, b int) bool { return comps[a].Variance > comps[b].Variance })
	return comps, nil
}
