// Package stats provides the statistical primitives ARCS relies on:
// entropy and information-gain measures (used by attribute selection and
// by the C4.5 baseline), descriptive statistics, covariance/correlation,
// a Jacobi eigensolver powering principal component analysis (the paper
// cites PCA and factor analysis as candidate attribute selectors), and
// reservoir / k-out-of-n sampling used by the segmentation verifier.
package stats

import (
	"errors"
	"math"
	"sort"
)

// Log2 returns log base 2 of x, defined as 0 for x <= 0. The MDL cost
// model and entropy computations both need this guarded form: an empty
// class or zero-error segmentation contributes no bits.
func Log2(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Log2(x)
}

// Entropy computes the Shannon entropy (in bits) of a discrete
// distribution given as non-negative counts. Zero counts contribute
// nothing; a zero total yields zero entropy.
func Entropy(counts []float64) float64 {
	var total float64
	for _, c := range counts {
		total += c
	}
	if total <= 0 {
		return 0
	}
	var h float64
	for _, c := range counts {
		if c > 0 {
			p := c / total
			h -= p * math.Log2(p)
		}
	}
	return h
}

// EntropyInts is Entropy over integer counts.
func EntropyInts(counts []int) float64 {
	f := make([]float64, len(counts))
	for i, c := range counts {
		f[i] = float64(c)
	}
	return Entropy(f)
}

// Gini computes the Gini impurity of a discrete distribution given as
// non-negative counts.
func Gini(counts []float64) float64 {
	var total float64
	for _, c := range counts {
		total += c
	}
	if total <= 0 {
		return 0
	}
	g := 1.0
	for _, c := range counts {
		p := c / total
		g -= p * p
	}
	return g
}

// InfoGain computes the information gain of a partition: parent entropy
// minus the size-weighted entropy of the children. children[i] is the
// class-count vector of partition i; the parent distribution is the
// element-wise sum.
func InfoGain(children [][]float64) float64 {
	if len(children) == 0 {
		return 0
	}
	parent := make([]float64, len(children[0]))
	var total float64
	sizes := make([]float64, len(children))
	for i, ch := range children {
		for j, c := range ch {
			parent[j] += c
			sizes[i] += c
		}
		total += sizes[i]
	}
	if total <= 0 {
		return 0
	}
	gain := Entropy(parent)
	for i, ch := range children {
		gain -= sizes[i] / total * Entropy(ch)
	}
	return gain
}

// SplitInfo computes the intrinsic information of a partition: the
// entropy of the partition sizes themselves. Used by C4.5's gain ratio.
func SplitInfo(children [][]float64) float64 {
	sizes := make([]float64, len(children))
	for i, ch := range children {
		for _, c := range ch {
			sizes[i] += c
		}
	}
	return Entropy(sizes)
}

// GainRatio computes C4.5's gain ratio: information gain normalized by
// split info. A split info of zero (all tuples in one child) yields zero.
func GainRatio(children [][]float64) float64 {
	si := SplitInfo(children)
	if si <= 0 {
		return 0
	}
	return InfoGain(children) / si
}

// ChiSquare computes the chi-square statistic of an observed contingency
// table against independence of rows and columns. Rows or columns with
// zero marginals contribute nothing.
func ChiSquare(table [][]float64) float64 {
	if len(table) == 0 {
		return 0
	}
	rows := len(table)
	cols := len(table[0])
	rowSum := make([]float64, rows)
	colSum := make([]float64, cols)
	var total float64
	for i := range table {
		for j := range table[i] {
			rowSum[i] += table[i][j]
			colSum[j] += table[i][j]
			total += table[i][j]
		}
	}
	if total <= 0 {
		return 0
	}
	var chi float64
	for i := range table {
		for j := range table[i] {
			expected := rowSum[i] * colSum[j] / total
			if expected > 0 {
				d := table[i][j] - expected
				chi += d * d / expected
			}
		}
	}
	return chi
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than
// two observations.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Covariance returns the population covariance of two equal-length
// samples.
func Covariance(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: covariance requires equal-length samples")
	}
	if len(xs) < 2 {
		return 0, nil
	}
	mx, my := Mean(xs), Mean(ys)
	var s float64
	for i := range xs {
		s += (xs[i] - mx) * (ys[i] - my)
	}
	return s / float64(len(xs)), nil
}

// Correlation returns the Pearson correlation coefficient of two samples,
// or 0 when either sample has zero variance.
func Correlation(xs, ys []float64) (float64, error) {
	cov, err := Covariance(xs, ys)
	if err != nil {
		return 0, err
	}
	sx, sy := StdDev(xs), StdDev(ys)
	if sx == 0 || sy == 0 {
		return 0, nil
	}
	return cov / (sx * sy), nil
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. xs need not be sorted.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MinMax returns the smallest and largest values in xs. It returns
// (+Inf, -Inf) for an empty slice so that accumulation loops can extend
// the result.
func MinMax(xs []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}
