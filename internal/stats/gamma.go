package stats

import (
	"errors"
	"math"
)

// GammaP computes the lower regularized incomplete gamma function
// P(a, x) = γ(a, x) / Γ(a) for a > 0, x >= 0, using the series expansion
// for x < a+1 and the continued fraction for x >= a+1 (Numerical Recipes
// §6.2). It underlies the chi-square CDF.
func GammaP(a, x float64) (float64, error) {
	if a <= 0 {
		return 0, errors.New("stats: GammaP requires a > 0")
	}
	if x < 0 {
		return 0, errors.New("stats: GammaP requires x >= 0")
	}
	if x == 0 {
		return 0, nil
	}
	if x < a+1 {
		return gammaSeries(a, x), nil
	}
	return 1 - gammaContinuedFraction(a, x), nil
}

// gammaSeries evaluates P(a, x) by its power series.
func gammaSeries(a, x float64) float64 {
	const maxIter = 500
	const eps = 3e-14
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < maxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	lg, _ := math.Lgamma(a)
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaContinuedFraction evaluates Q(a, x) = 1 - P(a, x) by Lentz's
// continued fraction.
func gammaContinuedFraction(a, x float64) float64 {
	const maxIter = 500
	const eps = 3e-14
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= maxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	lg, _ := math.Lgamma(a)
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// ChiSquareP returns the p-value of a chi-square statistic with the
// given degrees of freedom: P(X >= stat) under the null hypothesis of
// independence. Small p-values mean the observed association is unlikely
// under independence.
func ChiSquareP(stat float64, dof int) (float64, error) {
	if dof <= 0 {
		return 0, errors.New("stats: degrees of freedom must be positive")
	}
	if stat < 0 {
		return 0, errors.New("stats: chi-square statistic must be non-negative")
	}
	p, err := GammaP(float64(dof)/2, stat/2)
	if err != nil {
		return 0, err
	}
	return 1 - p, nil
}

// ChiSquareIndependence tests a contingency table for row/column
// independence, returning the statistic, degrees of freedom and p-value.
func ChiSquareIndependence(table [][]float64) (stat float64, dof int, p float64, err error) {
	if len(table) < 2 || len(table[0]) < 2 {
		return 0, 0, 0, errors.New("stats: need at least a 2x2 table")
	}
	stat = ChiSquare(table)
	dof = (len(table) - 1) * (len(table[0]) - 1)
	p, err = ChiSquareP(stat, dof)
	return stat, dof, p, err
}
