package bitop

import (
	"math/rand"
	"reflect"
	"testing"

	"arcs/internal/grid"
)

// mk builds a bitmap from ASCII rows (row 0 first), '#' = set.
func mk(t *testing.T, rows ...string) *grid.Bitmap {
	t.Helper()
	bm, err := grid.New(len(rows), len(rows[0]))
	if err != nil {
		t.Fatal(err)
	}
	for r, line := range rows {
		for c, ch := range line {
			if ch == '#' {
				bm.Set(r, c)
			}
		}
	}
	return bm
}

func TestEnumeratePaperExample(t *testing.T) {
	// The worked example of §3.3.1:
	//   row1: 0 1 1
	//   row2: 1 1 0
	//   row3: 1 0 0
	// Anchors at row 0 produce a 1x2 run (cols 1-2, height 1) and a
	// 2x1 run (col 1, height 2). Anchor row 1 produces runs (cols 0-1,
	// h 1) and (col 0, h 2); anchor row 2 produces (col 0, h 1).
	bm := mk(t,
		".##",
		"##.",
		"#..",
	)
	cands := Enumerate(bm)
	want := map[grid.Rect]bool{
		{R0: 0, C0: 1, R1: 0, C1: 2}: true, // top row run
		{R0: 0, C0: 1, R1: 1, C1: 1}: true, // the dashed-circle 1-by-2 cluster
		{R0: 1, C0: 0, R1: 1, C1: 1}: true, // the solid-circle 2-by-1 cluster
		{R0: 1, C0: 0, R1: 2, C1: 0}: true,
		{R0: 2, C0: 0, R1: 2, C1: 0}: true,
	}
	got := map[grid.Rect]bool{}
	for _, c := range cands {
		got[c] = true
	}
	for r := range want {
		if !got[r] {
			t.Errorf("missing candidate %v; got %v", r, cands)
		}
	}
}

func TestEnumerateCandidatesAreAllSet(t *testing.T) {
	bm := mk(t,
		"##..#",
		"###.#",
		".##..",
	)
	for _, cand := range Enumerate(bm) {
		for r := cand.R0; r <= cand.R1; r++ {
			for c := cand.C0; c <= cand.C1; c++ {
				if !bm.Get(r, c) {
					t.Fatalf("candidate %v covers unset cell (%d,%d)", cand, r, c)
				}
			}
		}
	}
}

func TestEnumerateEmpty(t *testing.T) {
	bm, _ := grid.New(4, 4)
	if cands := Enumerate(bm); len(cands) != 0 {
		t.Errorf("empty bitmap produced candidates %v", cands)
	}
}

func TestClusterSingleRectangle(t *testing.T) {
	bm := mk(t,
		".....",
		".###.",
		".###.",
		".....",
	)
	clusters := Cluster(bm, Options{})
	if len(clusters) != 1 {
		t.Fatalf("clusters = %v, want one rectangle", clusters)
	}
	want := grid.Rect{R0: 1, C0: 1, R1: 2, C1: 3}
	if clusters[0] != want {
		t.Errorf("cluster = %v, want %v", clusters[0], want)
	}
}

func TestClusterTwoRectangles(t *testing.T) {
	// The Figure 5 shape: two overlapping-edge rectangles covered by two
	// clusters.
	bm := mk(t,
		"####..",
		"####..",
		"..####",
		"..####",
	)
	clusters := Cluster(bm, Options{})
	if len(clusters) > 3 {
		t.Fatalf("got %d clusters %v; expect near-optimal (2-3)", len(clusters), clusters)
	}
	// All set cells must be covered.
	covered := func(r, c int) bool {
		for _, cl := range clusters {
			if cl.Contains(r, c) {
				return true
			}
		}
		return false
	}
	for r := 0; r < bm.Rows(); r++ {
		for c := 0; c < bm.Cols(); c++ {
			if bm.Get(r, c) && !covered(r, c) {
				t.Errorf("cell (%d,%d) not covered by %v", r, c, clusters)
			}
		}
	}
}

func TestClusterCoversExactlyWithMinArea1(t *testing.T) {
	bm := mk(t,
		"#.#",
		".#.",
		"#.#",
	)
	clusters := Cluster(bm, Options{})
	// Five isolated cells -> five 1x1 clusters.
	if len(clusters) != 5 {
		t.Errorf("clusters = %v, want 5 singletons", clusters)
	}
}

func TestClusterMinAreaPrunesNoise(t *testing.T) {
	bm := mk(t,
		"####.",
		"####.",
		"....#", // isolated noise cell
	)
	clusters := Cluster(bm, Options{MinArea: 2})
	if len(clusters) != 1 {
		t.Fatalf("clusters = %v, want the 4x2 block only", clusters)
	}
	if clusters[0].Area() != 8 {
		t.Errorf("cluster area = %d, want 8", clusters[0].Area())
	}
}

func TestClusterMaxClusters(t *testing.T) {
	bm := mk(t,
		"#.#.#",
	)
	clusters := Cluster(bm, Options{MaxClusters: 2})
	if len(clusters) != 2 {
		t.Errorf("MaxClusters ignored: %v", clusters)
	}
}

func TestClusterInputUnmodified(t *testing.T) {
	bm := mk(t,
		"##",
		"##",
	)
	before := bm.PopCount()
	Cluster(bm, Options{})
	if bm.PopCount() != before {
		t.Error("Cluster modified its input bitmap")
	}
}

func TestClusterGreedyPicksLargestFirst(t *testing.T) {
	bm := mk(t,
		"###....",
		"###....",
		"###....",
		".....##",
		".....##",
	)
	clusters := Cluster(bm, Options{})
	if len(clusters) != 2 {
		t.Fatalf("clusters = %v", clusters)
	}
	if clusters[0].Area() != 9 || clusters[1].Area() != 4 {
		t.Errorf("greedy order wrong: %v", clusters)
	}
}

func TestClusterLShapeDecomposition(t *testing.T) {
	// An L shape cannot be one rectangle; greedy should use exactly two.
	bm := mk(t,
		"#...",
		"#...",
		"####",
	)
	clusters := Cluster(bm, Options{})
	if len(clusters) != 2 {
		t.Fatalf("L-shape gave %v, want 2 clusters", clusters)
	}
	total := 0
	for _, c := range clusters {
		total += c.Area()
	}
	if total != 6 {
		t.Errorf("total covered area = %d, want 6 (no overlap for this shape)", total)
	}
}

func TestSortRects(t *testing.T) {
	rects := []grid.Rect{
		{R0: 2, C0: 0, R1: 2, C1: 0},
		{R0: 0, C0: 3, R1: 1, C1: 4},
		{R0: 0, C0: 1, R1: 0, C1: 1},
	}
	SortRects(rects)
	if rects[0].C0 != 1 || rects[1].C0 != 3 || rects[2].R0 != 2 {
		t.Errorf("sorted = %v", rects)
	}
}

func toBools(bm *grid.Bitmap) [][]bool {
	out := make([][]bool, bm.Rows())
	for r := range out {
		out[r] = make([]bool, bm.Cols())
		for c := 0; c < bm.Cols(); c++ {
			out[r][c] = bm.Get(r, c)
		}
	}
	return out
}

func TestClusterMatchesNaiveOracle(t *testing.T) {
	// Differential test: the word-packed implementation must agree with
	// the straightforward bool-matrix implementation on random grids.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		rows := 1 + rng.Intn(12)
		cols := 1 + rng.Intn(90) // crosses the 64-bit word boundary often
		bm, _ := grid.New(rows, cols)
		density := rng.Float64()
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				if rng.Float64() < density {
					bm.Set(r, c)
				}
			}
		}
		opts := Options{MinArea: 1 + rng.Intn(3)}
		fast := Cluster(bm, opts)
		slow := ClusterNaive(toBools(bm), opts)
		if !reflect.DeepEqual(fast, slow) {
			t.Fatalf("trial %d (%dx%d, minArea %d):\nfast = %v\nslow = %v\ngrid:\n%s",
				trial, rows, cols, opts.MinArea, fast, slow, bm)
		}
	}
}

func TestClusterCoverageInvariant(t *testing.T) {
	// Property: with MinArea 1, the clusters cover every set cell and
	// nothing but set cells.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		rows := 1 + rng.Intn(10)
		cols := 1 + rng.Intn(70)
		bm, _ := grid.New(rows, cols)
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				if rng.Float64() < 0.4 {
					bm.Set(r, c)
				}
			}
		}
		clusters := Cluster(bm, Options{})
		covered, _ := grid.New(rows, cols)
		for _, cl := range clusters {
			for r := cl.R0; r <= cl.R1; r++ {
				for c := cl.C0; c <= cl.C1; c++ {
					if !bm.Get(r, c) {
						t.Fatalf("trial %d: cluster %v covers unset cell (%d,%d)", trial, cl, r, c)
					}
					covered.Set(r, c)
				}
			}
		}
		if covered.PopCount() != bm.PopCount() {
			t.Fatalf("trial %d: covered %d of %d set cells", trial, covered.PopCount(), bm.PopCount())
		}
	}
}

func TestClusterNaiveEmpty(t *testing.T) {
	if got := ClusterNaive(nil, Options{}); got != nil {
		t.Errorf("nil grid gave %v", got)
	}
}

func TestClusterDisjointProperty(t *testing.T) {
	// Property: greedy selection clears chosen cells, so the final
	// clusters are pairwise disjoint regardless of input.
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		bm := randomBitmap(rng, 1+rng.Intn(15), 1+rng.Intn(80), rng.Float64())
		clusters := Cluster(bm, Options{MinArea: 1 + rng.Intn(3)})
		for i := 0; i < len(clusters); i++ {
			for j := i + 1; j < len(clusters); j++ {
				if clusters[i].Intersects(clusters[j]) {
					t.Fatalf("trial %d: clusters %v and %v overlap", trial, clusters[i], clusters[j])
				}
			}
		}
	}
}

func TestClusterDeterministicProperty(t *testing.T) {
	// Property: clustering the same bitmap twice yields identical output.
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 50; trial++ {
		bm := randomBitmap(rng, 1+rng.Intn(12), 1+rng.Intn(70), 0.5)
		a := Cluster(bm, Options{})
		b := Cluster(bm, Options{})
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("trial %d: nondeterministic clustering", trial)
		}
	}
}

// TestBitOpRoundZeroAlloc guards the zero-allocation property of a
// steady-state enumeration round: once the enumerator's scratch masks
// and output slice are warm, re-running the full anchor sweep must not
// allocate. This is what makes the per-round reuse in Cluster pay off —
// a greedy clustering of k rounds costs one enumerator, not k.
func TestBitOpRoundZeroAlloc(t *testing.T) {
	bm, err := grid.New(70, 130) // >2 words per row exercises the multi-word path
	if err != nil {
		t.Fatal(err)
	}
	// A few overlapping rectangles plus scattered noise so the sweep
	// emits candidates at several heights.
	bm.FillRect(grid.Rect{R0: 3, C0: 5, R1: 40, C1: 70})
	bm.FillRect(grid.Rect{R0: 20, C0: 60, R1: 65, C1: 128})
	bm.FillRect(grid.Rect{R0: 0, C0: 0, R1: 2, C1: 3})
	for i := 0; i < 70; i += 7 {
		bm.Set(i, (i*13)%130)
	}
	e := newEnumerator(bm)
	e.run(bm, nil) // warm the output slice to its steady-state capacity
	allocs := testing.AllocsPerRun(200, func() {
		e.run(bm, nil)
	})
	if allocs != 0 {
		t.Errorf("enumerator round allocated %.1f times per run, want 0", allocs)
	}
}
