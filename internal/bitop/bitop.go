// Package bitop implements the BitOp clustering algorithm of paper
// §3.3.1 (Figure 6), the geometric heart of ARCS. BitOp enumerates
// candidate rectangular clusters by sweeping an accumulating bitwise-AND
// mask down the bitmap from every anchor row: while the mask is stable
// the runs of set bits extend downward; each time the mask shrinks, the
// runs of the prior mask are emitted as rectangles of the accumulated
// height. The largest enumerated cluster is then selected greedily, its
// cells are cleared, and the process repeats until no sufficiently large
// cluster remains — the paper cites the classical result that this greedy
// set-cover style selection is near-optimal and runs in time linear in
// the size of the final cluster set.
//
// The implementation uses only word-wide AND/compare operations on the
// packed bitmap rows, mirroring the paper's claim that BitOp needs
// nothing beyond arithmetic registers, bitwise AND and shifts.
package bitop

import (
	"sort"

	"arcs/internal/grid"
)

// Options controls cluster selection.
type Options struct {
	// MinArea is the smallest cluster (in cells) worth keeping. The
	// greedy loop terminates when the largest remaining candidate is
	// smaller, which realizes both the dynamic pruning of §3.5 and the
	// algorithm's termination condition. Values below 1 are treated
	// as 1.
	MinArea int
	// MaxClusters bounds the number of clusters returned; zero means
	// unbounded.
	MaxClusters int
	// Stats, when non-nil, accumulates the call's operation accounting
	// (word ops, candidates, rounds, worker utilization). Nil costs
	// nothing.
	Stats *Stats
}

// Enumerate lists every candidate rectangle the mask sweep discovers,
// from every anchor row, in deterministic order (anchor row ascending,
// then emission order). The bitmap is not modified. Candidates may
// overlap and nest; selection happens in Cluster.
func Enumerate(bm *grid.Bitmap) []grid.Rect {
	return newEnumerator(bm).run(bm, nil)
}

// enumerator holds the scratch of a candidate enumeration — the two
// sweep masks and the output slice. Cluster reuses one across its
// greedy rounds so the steady-state round performs no allocations
// (guarded by TestBitOpRoundZeroAlloc); the parallel path gives each
// worker its own.
type enumerator struct {
	mask, next []uint64
	out        []grid.Rect
}

func newEnumerator(bm *grid.Bitmap) *enumerator {
	return &enumerator{
		mask: make([]uint64, bm.WordsPerRow()),
		next: make([]uint64, bm.WordsPerRow()),
	}
}

// run enumerates every anchor row of bm into the reused output slice.
// The returned slice aliases the enumerator's scratch and is valid until
// the next run call.
func (e *enumerator) run(bm *grid.Bitmap, st *Stats) []grid.Rect {
	e.out = e.out[:0]
	rows, cols := bm.Rows(), bm.Cols()
	for top := 0; top < rows; top++ {
		sweepAnchor(bm, top, rows, cols, e.mask, e.next, &e.out, st)
	}
	return e.out
}

func emitRuns(mask []uint64, cols, top, height int, out *[]grid.Rect) {
	grid.MaskRuns(mask, cols, func(c0, c1 int) {
		*out = append(*out, grid.Rect{R0: top, C0: c0, R1: top + height - 1, C1: c1})
	})
}

// Cluster runs the full BitOp procedure on a copy of the bitmap: it
// repeatedly enumerates candidates, selects the largest (ties broken by
// lowest anchor row, then lowest column, then greatest height, keeping
// the result deterministic), clears the selected cells and iterates until
// no candidate of at least MinArea cells remains or MaxClusters is hit.
// The input bitmap is not modified.
func Cluster(bm *grid.Bitmap, opts Options) []grid.Rect {
	minArea := opts.MinArea
	if minArea < 1 {
		minArea = 1
	}
	work := bm.Clone()
	enum := newEnumerator(work)
	var clusters []grid.Rect
	for work.Any() {
		if opts.MaxClusters > 0 && len(clusters) >= opts.MaxClusters {
			break
		}
		opts.Stats.addRound()
		cands := enum.run(work, opts.Stats)
		if len(cands) == 0 {
			break
		}
		best := pickBest(cands)
		if best.Area() < minArea {
			// §3.5: if the algorithm cannot locate a sufficiently large
			// cluster it terminates; remaining cells are noise/outliers.
			break
		}
		clusters = append(clusters, best)
		work.ClearRect(best)
	}
	return clusters
}

// pickBest selects the candidate with the largest area, breaking ties
// deterministically.
func pickBest(cands []grid.Rect) grid.Rect {
	best := cands[0]
	for _, c := range cands[1:] {
		if less(best, c) {
			best = c
		}
	}
	return best
}

// less reports whether b is a strictly better pick than a.
func less(a, b grid.Rect) bool {
	if b.Area() != a.Area() {
		return b.Area() > a.Area()
	}
	if b.R0 != a.R0 {
		return b.R0 < a.R0
	}
	if b.C0 != a.C0 {
		return b.C0 < a.C0
	}
	return b.Height() > a.Height()
}

// SortRects orders rectangles for stable presentation: by anchor row,
// then column, then area descending.
func SortRects(rects []grid.Rect) {
	sort.Slice(rects, func(i, j int) bool {
		a, b := rects[i], rects[j]
		if a.R0 != b.R0 {
			return a.R0 < b.R0
		}
		if a.C0 != b.C0 {
			return a.C0 < b.C0
		}
		return a.Area() > b.Area()
	})
}

// ClusterNaive is a reference implementation of BitOp that stores the
// grid as a bool matrix and scans cell-by-cell instead of word-at-a-time.
// It produces identical clusters to Cluster and exists to (a) serve as a
// differential-testing oracle and (b) quantify the value of the packed
// representation in the ablation benchmarks.
func ClusterNaive(cells [][]bool, opts Options) []grid.Rect {
	minArea := opts.MinArea
	if minArea < 1 {
		minArea = 1
	}
	rows := len(cells)
	if rows == 0 {
		return nil
	}
	cols := len(cells[0])
	work := make([][]bool, rows)
	for i := range cells {
		work[i] = append([]bool(nil), cells[i]...)
	}
	any := func() bool {
		for _, row := range work {
			for _, v := range row {
				if v {
					return true
				}
			}
		}
		return false
	}
	var clusters []grid.Rect
	for any() {
		if opts.MaxClusters > 0 && len(clusters) >= opts.MaxClusters {
			break
		}
		cands := enumerateNaive(work, rows, cols)
		if len(cands) == 0 {
			break
		}
		best := pickBest(cands)
		if best.Area() < minArea {
			break
		}
		clusters = append(clusters, best)
		for r := best.R0; r <= best.R1; r++ {
			for c := best.C0; c <= best.C1; c++ {
				work[r][c] = false
			}
		}
	}
	return clusters
}

func enumerateNaive(cells [][]bool, rows, cols int) []grid.Rect {
	var out []grid.Rect
	mask := make([]bool, cols)
	next := make([]bool, cols)
	emit := func(m []bool, top, height int) {
		start := -1
		for c := 0; c < cols; c++ {
			if m[c] && start < 0 {
				start = c
			} else if !m[c] && start >= 0 {
				out = append(out, grid.Rect{R0: top, C0: start, R1: top + height - 1, C1: c - 1})
				start = -1
			}
		}
		if start >= 0 {
			out = append(out, grid.Rect{R0: top, C0: start, R1: top + height - 1, C1: cols - 1})
		}
	}
	empty := func(m []bool) bool {
		for _, v := range m {
			if v {
				return false
			}
		}
		return true
	}
	equal := func(a, b []bool) bool {
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	for top := 0; top < rows; top++ {
		copy(mask, cells[top])
		if empty(mask) {
			continue
		}
		height := 1
		alive := true
		for r := top + 1; r < rows; r++ {
			for c := 0; c < cols; c++ {
				next[c] = mask[c] && cells[r][c]
			}
			if !equal(next, mask) {
				emit(mask, top, height)
				if empty(next) {
					alive = false
					break
				}
			}
			copy(mask, next)
			height++
		}
		if alive {
			emit(mask, top, height)
		}
	}
	return out
}
