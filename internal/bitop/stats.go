package bitop

import (
	"sync"
	"sync/atomic"
)

// Stats accumulates the operation accounting of clustering calls when
// attached via Options.Stats. Sweeps count in local integers and flush
// once per anchor row, so attaching Stats costs a handful of atomic adds
// per sweep — and a nil *Stats costs nothing at all: every method is a
// nil-safe no-op, mirroring the obs package's disabled handles, so call
// sites never branch on whether accounting is on. Safe for concurrent
// use by the parallel enumeration workers.
type Stats struct {
	andWordOps atomic.Int64
	cmpWordOps atomic.Int64
	candidates atomic.Int64
	sweeps     atomic.Int64
	rounds     atomic.Int64

	mu         sync.Mutex
	workerRows []int64
}

// addSweep records one anchor-row sweep's word-level operation counts
// and emitted candidate rectangles.
func (st *Stats) addSweep(andOps, cmpOps, rects int64) {
	if st == nil {
		return
	}
	st.andWordOps.Add(andOps)
	st.cmpWordOps.Add(cmpOps)
	st.candidates.Add(rects)
	st.sweeps.Add(1)
}

// addRound records one greedy select-and-clear round.
func (st *Stats) addRound() {
	if st == nil {
		return
	}
	st.rounds.Add(1)
}

// addWorkerRows records how many anchor rows one parallel worker
// processed in one enumeration — the chunk-size / utilization sample.
func (st *Stats) addWorkerRows(rows int64) {
	if st == nil {
		return
	}
	st.mu.Lock()
	st.workerRows = append(st.workerRows, rows)
	st.mu.Unlock()
}

// AndWordOps reports the 64-bit-word AND operations performed.
func (st *Stats) AndWordOps() int64 {
	if st == nil {
		return 0
	}
	return st.andWordOps.Load()
}

// CmpWordOps reports the word comparisons performed by mask equality and
// emptiness checks.
func (st *Stats) CmpWordOps() int64 {
	if st == nil {
		return 0
	}
	return st.cmpWordOps.Load()
}

// Candidates reports the candidate rectangles enumerated.
func (st *Stats) Candidates() int64 {
	if st == nil {
		return 0
	}
	return st.candidates.Load()
}

// Sweeps reports the anchor-row sweeps performed.
func (st *Stats) Sweeps() int64 {
	if st == nil {
		return 0
	}
	return st.sweeps.Load()
}

// Rounds reports the greedy select-and-clear rounds performed.
func (st *Stats) Rounds() int64 {
	if st == nil {
		return 0
	}
	return st.rounds.Load()
}

// WorkerRows returns a copy of the per-worker anchor-row counts, one
// entry per worker per parallel enumeration. Empty on the serial path.
func (st *Stats) WorkerRows() []int64 {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return append([]int64(nil), st.workerRows...)
}
