package bitop

import (
	"testing"

	"arcs/internal/grid"
)

func statsBitmap(t *testing.T) *grid.Bitmap {
	t.Helper()
	bm, err := grid.New(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r <= 4; r++ {
		for c := 2; c <= 5; c++ {
			bm.Set(r, c)
		}
	}
	bm.Set(6, 7)
	return bm
}

func TestBitopStatsAccounting(t *testing.T) {
	bm := statsBitmap(t)
	st := &Stats{}
	clusters := Cluster(bm, Options{MinArea: 1, Stats: st})
	if len(clusters) == 0 {
		t.Fatal("no clusters found")
	}
	if st.Rounds() == 0 || st.Sweeps() == 0 {
		t.Fatalf("rounds=%d sweeps=%d, want both > 0", st.Rounds(), st.Sweeps())
	}
	if st.AndWordOps() == 0 || st.CmpWordOps() == 0 {
		t.Fatalf("andOps=%d cmpOps=%d, want both > 0", st.AndWordOps(), st.CmpWordOps())
	}
	if st.Candidates() == 0 {
		t.Fatal("no candidates counted")
	}
	// Every greedy round sweeps each of the bitmap's rows once.
	if want := st.Rounds() * int64(bm.Rows()); st.Sweeps() != want {
		t.Fatalf("sweeps=%d, want rounds*rows=%d", st.Sweeps(), want)
	}
	if len(st.WorkerRows()) != 0 {
		t.Fatalf("serial path recorded worker rows: %v", st.WorkerRows())
	}

	// Stats must not change the clustering.
	plain := Cluster(bm, Options{MinArea: 1})
	if len(plain) != len(clusters) {
		t.Fatalf("stats changed result: %d vs %d clusters", len(clusters), len(plain))
	}
}

func TestBitopStatsParallelWorkerRows(t *testing.T) {
	bm := statsBitmap(t)
	st := &Stats{}
	ClusterParallel(bm, Options{MinArea: 1, Stats: st}, 4)
	rows := st.WorkerRows()
	if len(rows) == 0 {
		t.Fatal("parallel path recorded no worker-row samples")
	}
	var total int64
	for _, r := range rows {
		total += r
	}
	// Across all rounds, workers together process every anchor row.
	if want := st.Rounds() * int64(bm.Rows()); total != want {
		t.Fatalf("worker rows sum to %d, want %d", total, want)
	}
}

// TestBitopStatsDisabledZeroAlloc pins the nil-observer contract on the
// BitOp hot path: the per-sweep accounting calls are free when no Stats
// is attached — no allocation, no atomic traffic.
func TestBitopStatsDisabledZeroAlloc(t *testing.T) {
	var st *Stats
	allocs := testing.AllocsPerRun(1000, func() {
		st.addSweep(64, 64, 2)
		st.addRound()
		st.addWorkerRows(8)
	})
	if allocs != 0 {
		t.Fatalf("nil Stats accounting allocates %.1f per op, want 0", allocs)
	}
	if st.AndWordOps() != 0 || st.Rounds() != 0 || st.WorkerRows() != nil {
		t.Fatal("nil Stats reported non-zero values")
	}
}

func BenchmarkClusterStatsOverhead(b *testing.B) {
	bm, err := grid.New(64, 64)
	if err != nil {
		b.Fatal(err)
	}
	for r := 8; r < 40; r++ {
		for c := 8; c < 40; c++ {
			bm.Set(r, c)
		}
	}
	b.Run("nostats", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Cluster(bm, Options{MinArea: 4})
		}
	})
	b.Run("stats", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Cluster(bm, Options{MinArea: 4, Stats: &Stats{}})
		}
	})
}
