package bitop

import (
	"math/rand"
	"reflect"
	"testing"

	"arcs/internal/grid"
)

func randomBitmap(rng *rand.Rand, rows, cols int, density float64) *grid.Bitmap {
	bm, _ := grid.New(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if rng.Float64() < density {
				bm.Set(r, c)
			}
		}
	}
	return bm
}

func TestEnumerateParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		bm := randomBitmap(rng, 1+rng.Intn(40), 1+rng.Intn(120), rng.Float64())
		serial := Enumerate(bm)
		for _, workers := range []int{1, 2, 4, 8} {
			parallel := EnumerateParallel(bm, workers)
			if !reflect.DeepEqual(serial, parallel) {
				t.Fatalf("trial %d, workers %d: parallel enumeration differs\nserial:   %v\nparallel: %v",
					trial, workers, serial, parallel)
			}
		}
	}
}

func TestClusterParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		bm := randomBitmap(rng, 5+rng.Intn(30), 5+rng.Intn(100), 0.3+rng.Float64()*0.5)
		opts := Options{MinArea: 1 + rng.Intn(4)}
		serial := Cluster(bm, opts)
		parallel := ClusterParallel(bm, opts, 4)
		if !reflect.DeepEqual(serial, parallel) {
			t.Fatalf("trial %d: parallel clustering differs\nserial:   %v\nparallel: %v",
				trial, serial, parallel)
		}
	}
}

func TestEnumerateParallelDefaults(t *testing.T) {
	bm := randomBitmap(rand.New(rand.NewSource(7)), 20, 40, 0.4)
	// workers <= 0 uses GOMAXPROCS; more workers than rows clamps.
	a := EnumerateParallel(bm, 0)
	b := EnumerateParallel(bm, 1000)
	c := Enumerate(bm)
	if !reflect.DeepEqual(a, c) || !reflect.DeepEqual(b, c) {
		t.Error("default/overclamped worker counts changed results")
	}
}

func TestClusterParallelEmpty(t *testing.T) {
	bm, _ := grid.New(4, 4)
	if got := ClusterParallel(bm, Options{}, 4); len(got) != 0 {
		t.Errorf("empty bitmap clustered to %v", got)
	}
}

func TestClusterParallelRespectsLimits(t *testing.T) {
	bm := mk(t, "#.#.#.#")
	got := ClusterParallel(bm, Options{MaxClusters: 2}, 2)
	if len(got) != 2 {
		t.Errorf("MaxClusters ignored: %v", got)
	}
	got = ClusterParallel(bm, Options{MinArea: 2}, 2)
	if len(got) != 0 {
		t.Errorf("MinArea ignored: %v", got)
	}
}
