package bitop

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func TestEnumerateParallelContextBackgroundMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	bm := randomBitmap(rng, 30, 60, 0.4)
	want := Enumerate(bm)
	for _, ctx := range []context.Context{nil, context.Background()} {
		got, err := EnumerateParallelContext(ctx, bm, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("context variant diverged from Enumerate")
		}
	}
}

func TestEnumerateParallelContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	bm := randomBitmap(rand.New(rand.NewSource(13)), 64, 64, 0.5)
	for _, workers := range []int{1, 4} {
		out, err := EnumerateParallelContext(ctx, bm, workers)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: want context.Canceled, got %v", workers, err)
		}
		if out != nil {
			t.Errorf("workers=%d: canceled enumeration returned candidates", workers)
		}
	}
}

func TestClusterParallelContextCancelKeepsPartial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	bm := randomBitmap(rand.New(rand.NewSource(17)), 50, 80, 0.6)
	full := Cluster(bm, Options{})
	if len(full) < 3 {
		t.Fatalf("fixture too small: %d clusters", len(full))
	}
	// Cancel after the first round via the Stats round hook's absence:
	// simplest deterministic trigger is canceling before the call and
	// checking the round boundary returns what was already committed.
	cancel()
	partial, err := ClusterParallelContext(ctx, bm, Options{}, 4)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if len(partial) != 0 {
		t.Errorf("pre-canceled clustering produced %d clusters before first round check", len(partial))
	}
	// Uncancelled context variant equals the serial result.
	same, err := ClusterParallelContext(context.Background(), bm, Options{}, 4)
	if err != nil || !reflect.DeepEqual(same, full) {
		t.Errorf("background-context clustering diverged: %v", err)
	}
}

func TestWorkerPanicRepanicsOnCaller(t *testing.T) {
	testPanicAnchor = 10
	defer func() { testPanicAnchor = -1 }()
	bm := randomBitmap(rand.New(rand.NewSource(19)), 32, 32, 0.5)
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("worker panic did not propagate to the caller goroutine")
		}
		wp, ok := v.(*WorkerPanic)
		if !ok {
			t.Fatalf("recovered %T, want *WorkerPanic", v)
		}
		if !strings.Contains(wp.String(), "injected panic at anchor 10") {
			t.Errorf("panic value lost: %v", wp.Value)
		}
		if len(wp.Stack) == 0 || !strings.Contains(string(wp.Stack), "bitop") {
			t.Errorf("worker stack not captured")
		}
	}()
	EnumerateParallel(bm, 4)
}

func TestWorkerPanicSkippedSerially(t *testing.T) {
	// The serial path (workers=1) runs on the caller goroutine; the
	// injection hook only fires in workers, so serial enumeration of the
	// same bitmap must succeed.
	testPanicAnchor = 10
	defer func() { testPanicAnchor = -1 }()
	bm := randomBitmap(rand.New(rand.NewSource(19)), 32, 32, 0.5)
	if got := EnumerateParallel(bm, 1); got == nil {
		t.Error("serial path affected by worker-only fault injection")
	}
}
