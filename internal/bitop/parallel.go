package bitop

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"arcs/internal/cancelcheck"
	"arcs/internal/grid"
)

// anchorCheckEvery is the cooperative-cancellation granularity inside a
// parallel enumeration: each worker polls the context once per this many
// anchor rows. Sweeps are short (a mask pass over the grid), so a small
// stride keeps latency low without touching the per-word hot loop.
const anchorCheckEvery = 4

// testPanicAnchor, when >= 0, makes the worker processing that anchor row
// panic — the fault-injection seam for exercising the worker panic
// capture below. Always -1 outside tests.
var testPanicAnchor = -1

// WorkerPanic carries a panic that escaped a bitop worker goroutine: the
// original panic value plus the worker's stack at the point of panic. It
// is re-panicked on the calling goroutine so a caller-side recover (the
// probe isolation layer in core) observes worker crashes exactly like
// same-goroutine ones, with the true stack preserved.
type WorkerPanic struct {
	Value any
	Stack []byte
}

func (p *WorkerPanic) String() string {
	return fmt.Sprintf("bitop worker panic: %v\n%s", p.Value, p.Stack)
}

// EnumerateParallel is Enumerate with the anchor rows partitioned across
// worker goroutines — the parallel implementation the paper's conclusion
// says is straightforward: every anchor row's downward mask sweep is
// independent and only reads the bitmap. Results are identical to
// Enumerate (candidates are merged back in anchor-row order).
// workers <= 0 selects GOMAXPROCS.
func EnumerateParallel(bm *grid.Bitmap, workers int) []grid.Rect {
	out, _ := enumerateParallel(nil, bm, workers, nil)
	return out
}

// EnumerateParallelContext is EnumerateParallel with checkpointed
// cancellation: workers poll the context between anchor rows and stop
// early; the cancellation error is returned and partial candidates are
// discarded. A nil or background context adds no per-sweep cost.
func EnumerateParallelContext(ctx context.Context, bm *grid.Bitmap, workers int) ([]grid.Rect, error) {
	return enumerateParallel(cancelcheck.New(ctx), bm, workers, nil)
}

func enumerateParallel(ck *cancelcheck.Checker, bm *grid.Bitmap, workers int, st *Stats) ([]grid.Rect, error) {
	rows := bm.Rows()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > rows {
		workers = rows
	}
	if workers <= 1 {
		if err := ck.Err(); err != nil {
			return nil, err
		}
		return newEnumerator(bm).run(bm, st), nil
	}
	cols := bm.Cols()
	// Adaptive row batching: instead of one channel receive per anchor
	// row (whose synchronization cost dominates when sweeps are short),
	// anchors are grouped into contiguous chunks sized so each worker
	// sees ~8 chunks — small enough to rebalance when sweep costs are
	// skewed (anchors near the bottom sweep fewer rows), large enough to
	// amortize the channel op over many sweeps. Chunks are contiguous
	// ascending ranges, so concatenating per-chunk results in chunk
	// order reproduces the sequential anchor order exactly.
	chunks := workers * 8
	if chunks > rows {
		chunks = rows
	}
	chunkSize := (rows + chunks - 1) / chunks
	chunks = (rows + chunkSize - 1) / chunkSize
	perChunk := make([][]grid.Rect, chunks)
	var wg sync.WaitGroup
	next := make(chan int, chunks)
	for ci := 0; ci < chunks; ci++ {
		next <- ci
	}
	close(next)
	var firstErr error
	var firstPanic *WorkerPanic
	var errMu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// A panic on a worker goroutine would crash the whole process
			// before the caller's recover could run; capture it (with the
			// worker's stack) and re-panic it after Wait on the caller.
			defer func() {
				if v := recover(); v != nil {
					errMu.Lock()
					if firstPanic == nil {
						firstPanic = &WorkerPanic{Value: v, Stack: debug.Stack()}
					}
					errMu.Unlock()
				}
			}()
			mask := make([]uint64, bm.WordsPerRow())
			nextMask := make([]uint64, bm.WordsPerRow())
			myRows := int64(0)
			point := ck.Point(anchorCheckEvery)
		chunks:
			for ci := range next {
				lo := ci * chunkSize
				hi := lo + chunkSize
				if hi > rows {
					hi = rows
				}
				var rects []grid.Rect
				for top := lo; top < hi; top++ {
					if err := point.Check(); err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
						break chunks
					}
					if testPanicAnchor >= 0 && top == testPanicAnchor {
						panic(fmt.Sprintf("injected panic at anchor %d", top))
					}
					sweepAnchor(bm, top, rows, cols, mask, nextMask, &rects, st)
					myRows++
				}
				perChunk[ci] = rects
			}
			st.addWorkerRows(myRows)
		}()
	}
	wg.Wait()
	if firstPanic != nil {
		panic(firstPanic)
	}
	if firstErr != nil {
		return nil, firstErr
	}
	var out []grid.Rect
	for _, rects := range perChunk {
		out = append(out, rects...)
	}
	return out, nil
}

// sweepAnchor runs the downward mask sweep for one anchor row, reusing
// the caller's scratch masks and appending emitted rectangles to out.
// Each row below the anchor costs exactly one fused pass over the mask
// words (grid.AndRowInto computes the AND, the changed test and the
// empty test together), replacing the copy/AndRow/MasksEqual/MaskEmpty
// sequence that walked the words up to four times. Operation counts
// accumulate in local integers and flush into st once per sweep, so the
// inner loop carries no atomic or branch cost beyond two plain
// additions.
func sweepAnchor(bm *grid.Bitmap, top, rows, cols int, mask, next []uint64, out *[]grid.Rect, st *Stats) {
	wpr := int64(len(mask))
	andOps, cmpOps := int64(0), wpr // initial MaskEmpty scan
	bm.CopyRow(mask, top)
	if grid.MaskEmpty(mask) {
		st.addSweep(andOps, cmpOps, 0)
		return
	}
	emitted := len(*out)
	height := 1
	alive := true
	for r := top + 1; r < rows; r++ {
		changed, empty := bm.AndRowInto(next, mask, r)
		andOps += wpr
		cmpOps += wpr
		if changed {
			emitRuns(mask, cols, top, height, out)
			if empty {
				alive = false
				break
			}
		}
		// The shrunk mask is in next; swap rather than copy. When the
		// row changed nothing the two masks hold equal words, so the
		// swap is harmless.
		mask, next = next, mask
		height++
	}
	if alive {
		emitRuns(mask, cols, top, height, out)
	}
	st.addSweep(andOps, cmpOps, int64(len(*out)-emitted))
}

// ClusterParallel is Cluster with the candidate enumeration of each
// greedy round parallelized. It produces exactly the same clusters as
// Cluster.
func ClusterParallel(bm *grid.Bitmap, opts Options, workers int) []grid.Rect {
	out, _ := clusterParallel(nil, bm, opts, workers)
	return out
}

// ClusterParallelContext is ClusterParallel with cooperative
// cancellation: the context is checked at the top of every greedy round
// and inside each round's enumeration, and the cancellation error is
// returned with the clusters found so far (a usable partial clustering —
// greedy rounds are ordered best-first). A nil or background context
// adds no measurable cost.
func ClusterParallelContext(ctx context.Context, bm *grid.Bitmap, opts Options, workers int) ([]grid.Rect, error) {
	return clusterParallel(cancelcheck.New(ctx), bm, opts, workers)
}

func clusterParallel(ck *cancelcheck.Checker, bm *grid.Bitmap, opts Options, workers int) ([]grid.Rect, error) {
	minArea := opts.MinArea
	if minArea < 1 {
		minArea = 1
	}
	work := bm.Clone()
	var clusters []grid.Rect
	for work.Any() {
		if err := ck.Err(); err != nil {
			return clusters, err
		}
		if opts.MaxClusters > 0 && len(clusters) >= opts.MaxClusters {
			break
		}
		opts.Stats.addRound()
		cands, err := enumerateParallel(ck, work, workers, opts.Stats)
		if err != nil {
			return clusters, err
		}
		if len(cands) == 0 {
			break
		}
		best := pickBest(cands)
		if best.Area() < minArea {
			break
		}
		clusters = append(clusters, best)
		work.ClearRect(best)
	}
	return clusters, nil
}
