package bitop

import (
	"runtime"
	"sync"

	"arcs/internal/grid"
)

// EnumerateParallel is Enumerate with the anchor rows partitioned across
// worker goroutines — the parallel implementation the paper's conclusion
// says is straightforward: every anchor row's downward mask sweep is
// independent and only reads the bitmap. Results are identical to
// Enumerate (candidates are merged back in anchor-row order).
// workers <= 0 selects GOMAXPROCS.
func EnumerateParallel(bm *grid.Bitmap, workers int) []grid.Rect {
	rows := bm.Rows()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > rows {
		workers = rows
	}
	if workers <= 1 {
		return Enumerate(bm)
	}
	cols := bm.Cols()
	perAnchor := make([][]grid.Rect, rows)
	var wg sync.WaitGroup
	next := make(chan int, rows)
	for top := 0; top < rows; top++ {
		next <- top
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mask := make([]uint64, bm.WordsPerRow())
			nextMask := make([]uint64, bm.WordsPerRow())
			for top := range next {
				perAnchor[top] = sweepAnchor(bm, top, rows, cols, mask, nextMask)
			}
		}()
	}
	wg.Wait()
	var out []grid.Rect
	for _, rects := range perAnchor {
		out = append(out, rects...)
	}
	return out
}

// sweepAnchor runs the downward mask sweep for one anchor row, reusing
// the caller's scratch masks.
func sweepAnchor(bm *grid.Bitmap, top, rows, cols int, mask, next []uint64) []grid.Rect {
	bm.CopyRow(mask, top)
	if grid.MaskEmpty(mask) {
		return nil
	}
	var out []grid.Rect
	height := 1
	alive := true
	for r := top + 1; r < rows; r++ {
		copy(next, mask)
		bm.AndRow(next, r)
		if !grid.MasksEqual(next, mask) {
			emitRuns(mask, cols, top, height, &out)
			if grid.MaskEmpty(next) {
				alive = false
				break
			}
		}
		copy(mask, next)
		height++
	}
	if alive {
		emitRuns(mask, cols, top, height, &out)
	}
	return out
}

// ClusterParallel is Cluster with the candidate enumeration of each
// greedy round parallelized. It produces exactly the same clusters as
// Cluster.
func ClusterParallel(bm *grid.Bitmap, opts Options, workers int) []grid.Rect {
	minArea := opts.MinArea
	if minArea < 1 {
		minArea = 1
	}
	work := bm.Clone()
	var clusters []grid.Rect
	for work.Any() {
		if opts.MaxClusters > 0 && len(clusters) >= opts.MaxClusters {
			break
		}
		cands := EnumerateParallel(work, workers)
		if len(cands) == 0 {
			break
		}
		best := pickBest(cands)
		if best.Area() < minArea {
			break
		}
		clusters = append(clusters, best)
		work.ClearRect(best)
	}
	return clusters
}
