package bitop

import (
	"runtime"
	"sync"

	"arcs/internal/grid"
)

// EnumerateParallel is Enumerate with the anchor rows partitioned across
// worker goroutines — the parallel implementation the paper's conclusion
// says is straightforward: every anchor row's downward mask sweep is
// independent and only reads the bitmap. Results are identical to
// Enumerate (candidates are merged back in anchor-row order).
// workers <= 0 selects GOMAXPROCS.
func EnumerateParallel(bm *grid.Bitmap, workers int) []grid.Rect {
	return enumerateParallel(bm, workers, nil)
}

func enumerateParallel(bm *grid.Bitmap, workers int, st *Stats) []grid.Rect {
	rows := bm.Rows()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > rows {
		workers = rows
	}
	if workers <= 1 {
		return enumerate(bm, st)
	}
	cols := bm.Cols()
	perAnchor := make([][]grid.Rect, rows)
	var wg sync.WaitGroup
	next := make(chan int, rows)
	for top := 0; top < rows; top++ {
		next <- top
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mask := make([]uint64, bm.WordsPerRow())
			nextMask := make([]uint64, bm.WordsPerRow())
			myRows := int64(0)
			for top := range next {
				var rects []grid.Rect
				sweepAnchor(bm, top, rows, cols, mask, nextMask, &rects, st)
				perAnchor[top] = rects
				myRows++
			}
			st.addWorkerRows(myRows)
		}()
	}
	wg.Wait()
	var out []grid.Rect
	for _, rects := range perAnchor {
		out = append(out, rects...)
	}
	return out
}

// sweepAnchor runs the downward mask sweep for one anchor row, reusing
// the caller's scratch masks and appending emitted rectangles to out.
// Operation counts accumulate in local integers and flush into st once
// per sweep, so the inner loop carries no atomic or branch cost beyond
// two plain additions.
func sweepAnchor(bm *grid.Bitmap, top, rows, cols int, mask, next []uint64, out *[]grid.Rect, st *Stats) {
	wpr := int64(len(mask))
	andOps, cmpOps := int64(0), wpr // initial MaskEmpty scan
	bm.CopyRow(mask, top)
	if grid.MaskEmpty(mask) {
		st.addSweep(andOps, cmpOps, 0)
		return
	}
	emitted := len(*out)
	height := 1
	alive := true
	for r := top + 1; r < rows; r++ {
		copy(next, mask)
		bm.AndRow(next, r)
		andOps += wpr
		cmpOps += wpr
		if !grid.MasksEqual(next, mask) {
			emitRuns(mask, cols, top, height, out)
			cmpOps += wpr
			if grid.MaskEmpty(next) {
				alive = false
				break
			}
		}
		copy(mask, next)
		height++
	}
	if alive {
		emitRuns(mask, cols, top, height, out)
	}
	st.addSweep(andOps, cmpOps, int64(len(*out)-emitted))
}

// ClusterParallel is Cluster with the candidate enumeration of each
// greedy round parallelized. It produces exactly the same clusters as
// Cluster.
func ClusterParallel(bm *grid.Bitmap, opts Options, workers int) []grid.Rect {
	minArea := opts.MinArea
	if minArea < 1 {
		minArea = 1
	}
	work := bm.Clone()
	var clusters []grid.Rect
	for work.Any() {
		if opts.MaxClusters > 0 && len(clusters) >= opts.MaxClusters {
			break
		}
		opts.Stats.addRound()
		cands := enumerateParallel(work, workers, opts.Stats)
		if len(cands) == 0 {
			break
		}
		best := pickBest(cands)
		if best.Area() < minArea {
			break
		}
		clusters = append(clusters, best)
		work.ClearRect(best)
	}
	return clusters
}
