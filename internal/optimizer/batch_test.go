package optimizer

import (
	"errors"
	"reflect"
	"sync"
	"testing"
)

// batchObjective wraps another objective with an EvaluateBatch that
// evaluates probes concurrently, recording the batch sizes it saw. It
// mimics the core system's worker-pool objective.
type batchObjective struct {
	inner Objective

	mu      sync.Mutex
	batches []int
}

func (b *batchObjective) SupportLevels() ([]float64, error) { return b.inner.SupportLevels() }
func (b *batchObjective) ConfidenceLevels(sup float64) ([]float64, error) {
	return b.inner.ConfidenceLevels(sup)
}
func (b *batchObjective) Evaluate(sup, conf float64) (float64, int, error) {
	return b.inner.Evaluate(sup, conf)
}

func (b *batchObjective) EvaluateBatch(probes []Probe) []ProbeResult {
	b.mu.Lock()
	b.batches = append(b.batches, len(probes))
	b.mu.Unlock()
	out := make([]ProbeResult, len(probes))
	var wg sync.WaitGroup
	for i := range probes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i].Cost, out[i].NumRules, out[i].Err = b.inner.Evaluate(probes[i].Support, probes[i].Confidence)
		}(i)
	}
	wg.Wait()
	return out
}

// detObjective is a stateless deterministic bowl: safe for concurrent
// Evaluate calls, unlike quadObjective's eval counter.
type detObjective struct {
	supports, confs  []float64
	optSup, optConf  float64
	failSup, failCnf float64 // probe that errors; zero value disables
}

func (d *detObjective) SupportLevels() ([]float64, error)           { return d.supports, nil }
func (d *detObjective) ConfidenceLevels(float64) ([]float64, error) { return d.confs, nil }
func (d *detObjective) Evaluate(sup, conf float64) (float64, int, error) {
	if sup == d.failSup && conf == d.failCnf && sup != 0 {
		return 0, 0, errors.New("objective failure")
	}
	ds, dc := sup-d.optSup, conf-d.optConf
	cost := 10 + 100*ds*ds + 100*dc*dc
	n := 3
	if conf > 0.85 { // exercise the zero-rule path in batched mode too
		n = 0
	}
	return cost, n, nil
}

func newDet() *detObjective {
	return &detObjective{
		supports: levels(0.01, 0.2, 20),
		confs:    levels(0.1, 0.9, 9),
		optSup:   0.05,
		optConf:  0.5,
	}
}

// TestBatchedMatchesSequential is the strategy-level determinism
// contract: a batch-capable objective must produce bit-identical Best
// and Trace to plain sequential evaluation, for every strategy that
// batches.
func TestBatchedMatchesSequential(t *testing.T) {
	strategies := map[string]Strategy{
		"walk":        ThresholdWalk{Epsilon: -1},
		"walk-budget": ThresholdWalk{MaxEvals: 17, Patience: 100},
		"factorial":   Factorial{Rounds: 8},
		"anneal":      Anneal{Seed: 3, Iterations: 100},
	}
	for name, strat := range strategies {
		t.Run(name, func(t *testing.T) {
			seq, seqErr := strat.Optimize(newDet())
			batched := &batchObjective{inner: newDet()}
			par, parErr := strat.Optimize(batched)
			if (seqErr == nil) != (parErr == nil) {
				t.Fatalf("error mismatch: sequential=%v batched=%v", seqErr, parErr)
			}
			if !reflect.DeepEqual(seq, par) {
				t.Errorf("batched result differs from sequential:\nseq: %+v\npar: %+v", seq, par)
			}
		})
	}
}

func TestWalkUsesBatches(t *testing.T) {
	b := &batchObjective{inner: newDet()}
	if _, err := (ThresholdWalk{Epsilon: -1}).Optimize(b); err != nil {
		t.Fatal(err)
	}
	max := 0
	for _, n := range b.batches {
		if n > max {
			max = n
		}
	}
	if max < 2 {
		t.Errorf("walk never submitted a multi-probe batch: %v", b.batches)
	}
}

func TestBatchedErrorStopsAtFirst(t *testing.T) {
	// The batch path evaluates every probe of a batch even when one
	// fails, but the merged outcome must match sequential first-error
	// semantics: identical trace prefix and identical error.
	mk := func() *detObjective {
		d := newDet()
		// confs[3] survives the walk's MaxConfLevels subsampling (9 → 8
		// drops index 4), so the failure probe is actually reached.
		d.failSup = d.supports[2]
		d.failCnf = d.confs[3]
		return d
	}
	seq, seqErr := ThresholdWalk{Epsilon: -1}.Optimize(mk())
	par, parErr := ThresholdWalk{Epsilon: -1}.Optimize(&batchObjective{inner: mk()})
	if seqErr == nil || parErr == nil {
		t.Fatalf("expected errors, got sequential=%v batched=%v", seqErr, parErr)
	}
	if seqErr.Error() != parErr.Error() {
		t.Errorf("error mismatch:\nseq: %v\npar: %v", seqErr, parErr)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("partial result mismatch:\nseq: %+v\npar: %+v", seq, par)
	}
}

// levelError objective: SupportLevels/ConfidenceLevels can fail, and the
// real error must surface (satellite bugfix: previously core swallowed it
// and the optimizer misreported ErrNoThresholds).
type levelErrObjective struct {
	supErr, confErr error
	supports, confs []float64
}

func (l *levelErrObjective) SupportLevels() ([]float64, error) { return l.supports, l.supErr }
func (l *levelErrObjective) ConfidenceLevels(float64) ([]float64, error) {
	return l.confs, l.confErr
}
func (l *levelErrObjective) Evaluate(sup, conf float64) (float64, int, error) {
	return 1, 1, nil
}

func TestLevelErrorsPropagate(t *testing.T) {
	sentinel := errors.New("threshold index corrupt")
	strategies := map[string]Strategy{
		"walk":      ThresholdWalk{},
		"anneal":    Anneal{Seed: 1},
		"factorial": Factorial{},
	}
	for name, strat := range strategies {
		t.Run(name+"/supports", func(t *testing.T) {
			obj := &levelErrObjective{supErr: sentinel}
			if _, err := strat.Optimize(obj); !errors.Is(err, sentinel) {
				t.Errorf("err = %v, want wrapped sentinel (not ErrNoThresholds)", err)
			}
		})
		t.Run(name+"/confidences", func(t *testing.T) {
			obj := &levelErrObjective{
				supports: []float64{0.1, 0.2},
				confErr:  sentinel,
			}
			if _, err := strat.Optimize(obj); !errors.Is(err, sentinel) {
				t.Errorf("err = %v, want wrapped sentinel (not ErrNoThresholds)", err)
			}
		})
	}
}
