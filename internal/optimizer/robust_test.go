package optimizer

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"
)

// faultyObjective wraps quadObjective, failing chosen evaluations with
// an isolated probe failure and optionally canceling a context after a
// set number of evaluations.
type faultyObjective struct {
	*quadObjective
	probeFailAt map[int]bool // evaluation numbers that fail isolated
	cancelAfter int          // evaluations before cancel fires; 0 = never
	cancel      context.CancelFunc
}

func (f *faultyObjective) Evaluate(sup, conf float64) (float64, int, error) {
	next := f.evals + 1
	if f.probeFailAt[next] {
		f.evals++
		return 0, 0, fmt.Errorf("%w: injected crash at eval %d", ErrProbeFailed, next)
	}
	if f.cancelAfter > 0 && next > f.cancelAfter {
		f.cancel()
		return 0, 0, context.Canceled
	}
	return f.quadObjective.Evaluate(sup, conf)
}

func TestStrategiesImplementContextStrategy(t *testing.T) {
	for _, s := range []Strategy{ThresholdWalk{}, Anneal{}, Factorial{}} {
		if _, ok := s.(ContextStrategy); !ok {
			t.Errorf("%T does not implement ContextStrategy", s)
		}
	}
}

func TestWalkSkipsFailedProbes(t *testing.T) {
	clean, err := (ThresholdWalk{Epsilon: -1}).Optimize(newQuad())
	if err != nil {
		t.Fatal(err)
	}
	f := &faultyObjective{quadObjective: newQuad(), probeFailAt: map[int]bool{2: true, 5: true}}
	best, err := (ThresholdWalk{Epsilon: -1}).Optimize(f)
	if err != nil {
		t.Fatalf("isolated probe failures aborted the walk: %v", err)
	}
	if best.Failures != 2 {
		t.Errorf("Failures = %d, want 2", best.Failures)
	}
	failed := 0
	for _, s := range best.Trace {
		if s.Reason == ReasonProbeFailed {
			failed++
		}
	}
	if failed != 2 {
		t.Errorf("trace has %d probe-failed steps, want 2", failed)
	}
	// Losing two probes must not change the optimum the walk converges to
	// (the bowl is smooth and densely probed).
	if math.Abs(best.Support-clean.Support) > 0.05 {
		t.Errorf("support drifted after probe failures: %g vs %g", best.Support, clean.Support)
	}
}

func TestWalkCancelReturnsBestSoFar(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	f := &faultyObjective{quadObjective: newQuad(), cancelAfter: 12, cancel: cancel}
	best, err := (ThresholdWalk{Epsilon: -1}).OptimizeContext(ctx, f)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if best.Evaluations == 0 || math.IsInf(best.Cost, 1) {
		t.Errorf("cancellation discarded the incumbent best: %+v", best)
	}
	if best.Evaluations > 12 {
		t.Errorf("walk kept probing after cancel: %d evaluations", best.Evaluations)
	}
}

func TestWalkPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	best, err := (ThresholdWalk{}).OptimizeContext(ctx, newQuad())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if best.Evaluations != 0 {
		t.Errorf("pre-canceled walk evaluated %d probes", best.Evaluations)
	}
}

func TestAnnealSkipsFailedProbes(t *testing.T) {
	f := &faultyObjective{quadObjective: newQuad(), probeFailAt: map[int]bool{1: true, 7: true}}
	best, err := (Anneal{Seed: 1, Iterations: 60}).Optimize(f)
	if err != nil {
		t.Fatalf("isolated probe failures aborted annealing: %v", err)
	}
	if best.Failures != 2 {
		t.Errorf("Failures = %d, want 2", best.Failures)
	}
	if math.IsInf(best.Cost, 1) {
		t.Error("annealing found nothing despite only 2 failed probes")
	}
}

func TestAnnealCancelMidChain(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	f := &faultyObjective{quadObjective: newQuad(), cancelAfter: 10, cancel: cancel}
	best, err := (Anneal{Seed: 1, Iterations: 200}).OptimizeContext(ctx, f)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if best.Evaluations == 0 || best.Evaluations > 11 {
		t.Errorf("evaluations after cancel = %d", best.Evaluations)
	}
}

func TestFactorialSkipsFailedProbesAndCancels(t *testing.T) {
	f := &faultyObjective{quadObjective: newQuad(), probeFailAt: map[int]bool{3: true}}
	best, err := (Factorial{}).Optimize(f)
	if err != nil {
		t.Fatalf("isolated probe failure aborted factorial: %v", err)
	}
	if best.Failures != 1 {
		t.Errorf("Failures = %d, want 1", best.Failures)
	}

	ctx, cancel := context.WithCancel(context.Background())
	f2 := &faultyObjective{quadObjective: newQuad(), cancelAfter: 6, cancel: cancel}
	best, err = (Factorial{}).OptimizeContext(ctx, f2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if best.Evaluations == 0 {
		t.Error("cancellation discarded the incumbent best")
	}
}

func TestFatalErrorsStillAbort(t *testing.T) {
	q := newQuad()
	q.failAt = 4
	if _, err := (ThresholdWalk{}).Optimize(q); err == nil || IsProbeFailure(err) {
		t.Errorf("fatal objective error mishandled: %v", err)
	}
}
