// Package optimizer implements the heuristic parameter search of paper
// §3.7: finding the minimum-support and minimum-confidence thresholds
// whose segmentation minimizes the MDL cost. The search space is the set
// of threshold values that actually occur in the binned data (Figure 10);
// because ARCS re-mines from the in-memory BinArray, each probe is cheap.
//
// Three strategies are provided: the paper's low-to-high threshold walk,
// and the two future-work alternatives it names — simulated annealing and
// two-level factorial design.
//
// The walk and the factorial design probe several threshold pairs whose
// outcomes are mutually independent, so both submit their probes as
// batches: an objective that implements ObjectiveBatch may evaluate a
// batch concurrently (the core system fans batches across a worker
// pool). Results are merged back in probe order, so Best and Trace are
// bit-identical to a strictly sequential evaluation.
package optimizer

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"arcs/internal/cancelcheck"
)

// Objective is the feedback loop the optimizer drives: evaluating a
// threshold pair re-mines the rules, clusters them, verifies the
// segmentation against samples and returns its MDL cost. Implemented by
// the core ARCS system.
type Objective interface {
	// SupportLevels returns the unique support thresholds occurring in
	// the data, ascending.
	SupportLevels() ([]float64, error)
	// ConfidenceLevels returns candidate confidence thresholds for a
	// given support threshold, ascending.
	ConfidenceLevels(support float64) ([]float64, error)
	// Evaluate runs the pipeline at the thresholds and returns the MDL
	// cost and the number of clustered rules produced. Evaluate must be
	// deterministic: the same thresholds always yield the same result.
	Evaluate(support, confidence float64) (cost float64, numRules int, err error)
}

// Probe is one (support, confidence) threshold pair submitted for
// evaluation.
type Probe struct {
	Support, Confidence float64
}

// ProbeResult is the outcome of evaluating one Probe.
type ProbeResult struct {
	Cost     float64
	NumRules int
	Err      error
	// CacheHit reports whether the objective answered the probe from a
	// memoized cache rather than running the pipeline. Objectives that
	// do not memoize leave it false.
	CacheHit bool
}

// ObjectiveBatch is an Objective that can evaluate several independent
// probes at once — typically concurrently across a worker pool.
// EvaluateBatch must return one result per probe, in probe order, and
// each result must be identical to what a sequential Evaluate call with
// the same thresholds would return; the strategies rely on that to stay
// bit-identical to their sequential form.
type ObjectiveBatch interface {
	Objective
	EvaluateBatch(probes []Probe) []ProbeResult
}

// evaluateAll evaluates probes in order, fanning out through the
// objective's batch path when it provides one. The sequential fallback
// stops at the first error and truncates the result slice there, which
// is indistinguishable from the batch path to callers that merge results
// in order and stop at the first error.
func evaluateAll(obj Objective, probes []Probe) []ProbeResult {
	if len(probes) == 0 {
		return nil
	}
	if b, ok := obj.(ObjectiveBatch); ok && len(probes) > 1 {
		return b.EvaluateBatch(probes)
	}
	out := make([]ProbeResult, 0, len(probes))
	for _, p := range probes {
		cost, n, err := obj.Evaluate(p.Support, p.Confidence)
		out = append(out, ProbeResult{Cost: cost, NumRules: n, Err: err})
		// Isolated probe failures don't invalidate the rest of the batch —
		// keep going so the sequential path matches the batch path, which
		// always returns one result per probe.
		if err != nil && !IsProbeFailure(err) {
			break
		}
	}
	return out
}

// Probe outcome classifications recorded in Step.Reason.
const (
	// ReasonImproved marks a probe that displaced the incumbent best.
	ReasonImproved = "improved"
	// ReasonZeroRules marks a probe whose segmentation produced no rules
	// and was discarded regardless of cost.
	ReasonZeroRules = "zero-rules"
	// ReasonNoImprovement marks a probe that produced rules but did not
	// beat the incumbent (within the strategy's epsilon, if any).
	ReasonNoImprovement = "no-improvement"
	// ReasonFixed marks the single probe of a fixed-threshold run.
	ReasonFixed = "fixed"
	// ReasonProbeFailed marks a probe whose evaluation failed in a way the
	// objective declares isolated (see ErrProbeFailed) — typically a
	// recovered worker panic. The probe is skipped; the search continues.
	ReasonProbeFailed = "probe-failed"
)

// ErrProbeFailed marks probe errors confined to that single evaluation:
// an objective that recovers a crash inside one probe wraps it so the
// strategies skip the probe (recording a ReasonProbeFailed step and
// counting it in Best.Failures) instead of aborting the whole search.
// Errors not wrapping ErrProbeFailed abort the search as before.
var ErrProbeFailed = errors.New("optimizer: probe failed")

// IsProbeFailure reports whether err is an isolated probe failure.
func IsProbeFailure(err error) bool { return errors.Is(err, ErrProbeFailed) }

// Step records one probe of the search, for traces and reports.
type Step struct {
	Support, Confidence float64
	Cost                float64
	NumRules            int
	// Accepted reports whether this probe became the incumbent best at
	// the moment it was evaluated.
	Accepted bool
	// Reason classifies the outcome: one of the Reason* constants.
	Reason string
	// CacheHit reports whether the probe was answered from the
	// objective's memoized cache (populated on the batch path; probes
	// evaluated through the plain Evaluate call leave it false).
	CacheHit bool
}

// Best is the outcome of a search.
type Best struct {
	Support, Confidence float64
	Cost                float64
	NumRules            int
	Evaluations         int
	// Failures counts probes skipped as isolated failures (ErrProbeFailed);
	// they are included in Evaluations.
	Failures int
	Trace    []Step
}

// ErrNoThresholds is returned when the data admits no rules at all.
var ErrNoThresholds = errors.New("optimizer: no candidate thresholds (no occupied cells)")

// Strategy is a search procedure over the objective.
type Strategy interface {
	Optimize(obj Objective) (Best, error)
}

// ContextStrategy is a Strategy supporting cooperative cancellation: on
// context cancellation OptimizeContext stops between probe batches and
// returns the best threshold pair found so far together with the
// cancellation error, so the caller can degrade to a partial result. All
// strategies in this package implement it.
type ContextStrategy interface {
	Strategy
	OptimizeContext(ctx context.Context, obj Objective) (Best, error)
}

// noBest classifies a search that finished without a measured incumbent:
// when every recorded probe failed, the error says so (wrapping
// ErrProbeFailed) instead of claiming the data admits no rules —
// otherwise callers that tolerate ErrNoThresholds (SegmentAll's
// empty-group handling) would silently swallow a crashed search.
func noBest(best Best) error {
	if best.Failures > 0 && best.Failures == best.Evaluations {
		return fmt.Errorf("optimizer: all %d probes failed: %w", best.Failures, ErrProbeFailed)
	}
	return ErrNoThresholds
}

// probeErr handles one failed probe. Isolated failures (ErrProbeFailed)
// are recorded on the trace and skipped — it returns nil and the search
// continues. Cancellation propagates unwrapped so callers can classify
// it; anything else is wrapped with the probe position and aborts.
func probeErr(best *Best, sup, conf float64, err error) error {
	if cancelcheck.IsCancel(err) {
		return err
	}
	if IsProbeFailure(err) {
		best.Evaluations++
		best.Failures++
		best.Trace = append(best.Trace, Step{Support: sup, Confidence: conf, Reason: ReasonProbeFailed})
		return nil
	}
	return fmt.Errorf("optimizer: evaluating (%g, %g): %w", sup, conf, err)
}

// ThresholdWalk is the paper's search: begin with a low minimum support
// so dynamic pruning can remove unnecessary rules, then gradually
// increase it to shed background noise and outliers, stopping when the
// cost stops improving (within Epsilon) for Patience consecutive support
// levels. At each support level a bounded set of candidate confidences is
// probed — as one batch, since the probes are independent.
type ThresholdWalk struct {
	// Epsilon is the minimum cost improvement (in MDL bits) that counts
	// as progress: a later probe replaces the incumbent only when it is
	// more than Epsilon cheaper. This both implements the paper's
	// "no improvement within some ε" convergence test and realizes its
	// preference for low-support solutions — marginal wins discovered
	// deep into the walk (typically degenerate near-empty segmentations
	// at extreme thresholds, which the flat log2(|C|) model term prices
	// too cheaply) do not displace an established low-threshold
	// segmentation. Zero means 0.25 bits; negative means exact
	// comparison.
	Epsilon float64
	// Patience is how many non-improving support levels to tolerate
	// before stopping. Zero means 3.
	Patience int
	// MaxSupportLevels caps how many distinct support thresholds are
	// visited (even sub-sampling when the data has more). Zero means 48.
	MaxSupportLevels int
	// MaxConfLevels caps the confidence candidates probed per support
	// level (even sub-sampling). Zero means 8.
	MaxConfLevels int
	// MaxEvals bounds total objective evaluations — the deterministic
	// stand-in for the paper's "budgeted time". Zero means 512.
	MaxEvals int
	// TimeBudget, when positive, stops the walk once the wall-clock
	// budget is spent (checked between probe batches) — the literal form
	// of §2.2's "the verifier determines that the budgeted time has
	// expired". Prefer MaxEvals in tests; it is deterministic.
	TimeBudget time.Duration
}

func (w ThresholdWalk) defaults() ThresholdWalk {
	if w.Epsilon == 0 {
		w.Epsilon = 0.25
	} else if w.Epsilon < 0 {
		w.Epsilon = 0
	}
	if w.Patience == 0 {
		w.Patience = 3
	}
	if w.MaxSupportLevels == 0 {
		w.MaxSupportLevels = 48
	}
	if w.MaxConfLevels == 0 {
		w.MaxConfLevels = 8
	}
	if w.MaxEvals == 0 {
		w.MaxEvals = 512
	}
	return w
}

// Optimize implements Strategy.
func (w ThresholdWalk) Optimize(obj Objective) (Best, error) {
	return w.OptimizeContext(context.Background(), obj)
}

// OptimizeContext implements ContextStrategy: the context is checked
// between support levels and across each level's probe batch, and on
// cancellation the walk returns the incumbent best with the error.
func (w ThresholdWalk) OptimizeContext(ctx context.Context, obj Objective) (Best, error) {
	w = w.defaults()
	ck := cancelcheck.New(ctx)
	allSupports, err := obj.SupportLevels()
	if err != nil {
		return Best{}, fmt.Errorf("optimizer: support levels: %w", err)
	}
	supports := subsample(allSupports, w.MaxSupportLevels)
	if len(supports) == 0 {
		return Best{}, ErrNoThresholds
	}
	var deadline time.Time
	if w.TimeBudget > 0 {
		deadline = time.Now().Add(w.TimeBudget)
	}
	expired := func() bool {
		return !deadline.IsZero() && !time.Now().Before(deadline)
	}
	best := Best{Cost: math.Inf(1)}
	sinceImprove := 0
	for _, sup := range supports {
		if err := ck.Err(); err != nil {
			return best, err
		}
		if best.Evaluations >= w.MaxEvals || expired() {
			break
		}
		allConfs, err := obj.ConfidenceLevels(sup)
		if err != nil {
			return best, fmt.Errorf("optimizer: confidence levels at %g: %w", sup, err)
		}
		confs := subsample(allConfs, w.MaxConfLevels)
		if len(confs) == 0 {
			continue
		}
		if budget := w.MaxEvals - best.Evaluations; len(confs) > budget {
			confs = confs[:budget]
		}
		probes := make([]Probe, len(confs))
		for i, conf := range confs {
			probes[i] = Probe{Support: sup, Confidence: conf}
		}
		levelBest := math.Inf(1)
		for i, r := range evaluateAll(obj, probes) {
			if r.Err != nil {
				if perr := probeErr(&best, sup, confs[i], r.Err); perr != nil {
					return best, perr
				}
				continue
			}
			best.Evaluations++
			step := Step{Support: sup, Confidence: confs[i],
				Cost: r.Cost, NumRules: r.NumRules, CacheHit: r.CacheHit}
			// Segmentations with zero rules are useless regardless of
			// cost; they count neither as the level's best nor as the
			// overall winner.
			if r.NumRules > 0 && r.Cost < levelBest {
				levelBest = r.Cost
			}
			switch {
			case r.NumRules == 0:
				step.Reason = ReasonZeroRules
			case r.Cost < best.Cost-w.Epsilon:
				step.Accepted, step.Reason = true, ReasonImproved
				best.Support, best.Confidence = sup, confs[i]
				best.Cost = r.Cost
				best.NumRules = r.NumRules
				sinceImprove = -1 // reset below after the level finishes
			default:
				step.Reason = ReasonNoImprovement
			}
			best.Trace = append(best.Trace, step)
		}
		if levelBest >= best.Cost-w.Epsilon {
			sinceImprove++
			if sinceImprove >= w.Patience {
				break
			}
		} else {
			sinceImprove = 0
		}
	}
	if math.IsInf(best.Cost, 1) {
		return best, noBest(best)
	}
	return best, nil
}

// subsample returns up to max values of xs, evenly spaced, always
// including the first and last.
func subsample(xs []float64, max int) []float64 {
	if len(xs) <= max || max <= 0 {
		return xs
	}
	out := make([]float64, 0, max)
	for i := 0; i < max; i++ {
		pos := float64(i) / float64(max-1) * float64(len(xs)-1)
		out = append(out, xs[int(math.Round(pos))])
	}
	// Deduplicate adjacent picks caused by rounding.
	dedup := out[:1]
	for _, v := range out[1:] {
		if v != dedup[len(dedup)-1] {
			dedup = append(dedup, v)
		}
	}
	return dedup
}

// Anneal searches by simulated annealing over the indices of the
// threshold lists (paper §5 suggests annealing as an alternative search).
// It is useful when the cost surface has local minima the walk gets stuck
// in. Each proposal depends on whether the previous one was accepted, so
// the annealing chain is inherently sequential; it still benefits from a
// memoizing objective when the chain revisits states.
type Anneal struct {
	// Seed drives the random walk; runs are deterministic per seed.
	Seed int64
	// Iterations is the number of proposals. Zero means 200.
	Iterations int
	// InitialTemp scales early acceptance of worse moves. Zero means 2.
	InitialTemp float64
	// Cooling is the geometric cooling factor per iteration. Zero means
	// 0.97.
	Cooling float64
}

func (a Anneal) defaults() Anneal {
	if a.Iterations == 0 {
		a.Iterations = 200
	}
	if a.InitialTemp == 0 {
		a.InitialTemp = 2
	}
	if a.Cooling == 0 {
		a.Cooling = 0.97
	}
	return a
}

// Optimize implements Strategy.
func (a Anneal) Optimize(obj Objective) (Best, error) {
	return a.OptimizeContext(context.Background(), obj)
}

// OptimizeContext implements ContextStrategy: the context is checked
// before every proposal, and on cancellation the chain stops and returns
// the incumbent best with the error. An isolated probe failure rejects
// only that proposal (the chain stays where it was, consuming the RNG
// identically up to the failed evaluation).
func (a Anneal) OptimizeContext(ctx context.Context, obj Objective) (Best, error) {
	a = a.defaults()
	ck := cancelcheck.New(ctx)
	supports, err := obj.SupportLevels()
	if err != nil {
		return Best{}, fmt.Errorf("optimizer: support levels: %w", err)
	}
	if len(supports) == 0 {
		return Best{}, ErrNoThresholds
	}
	rng := rand.New(rand.NewSource(a.Seed))
	best := Best{Cost: math.Inf(1)}

	// eval probes one state; ok=false marks an isolated probe failure
	// (already recorded on the trace) that rejects just this proposal.
	eval := func(si int, conf float64) (cost float64, ok bool, err error) {
		cost, n, err := obj.Evaluate(supports[si], conf)
		if err != nil {
			if perr := probeErr(&best, supports[si], conf, err); perr != nil {
				return 0, false, perr
			}
			return 0, false, nil
		}
		best.Evaluations++
		step := Step{Support: supports[si], Confidence: conf, Cost: cost, NumRules: n}
		switch {
		case n == 0:
			step.Reason = ReasonZeroRules
		case cost < best.Cost:
			step.Accepted, step.Reason = true, ReasonImproved
			best.Support, best.Confidence = supports[si], conf
			best.Cost, best.NumRules = cost, n
		default:
			step.Reason = ReasonNoImprovement
		}
		best.Trace = append(best.Trace, step)
		return cost, true, nil
	}

	// Start at the lowest support with its median confidence, matching
	// the paper's low-support starting point.
	si := 0
	confs, err := obj.ConfidenceLevels(supports[si])
	if err != nil {
		return Best{}, fmt.Errorf("optimizer: confidence levels at %g: %w", supports[si], err)
	}
	if len(confs) == 0 {
		return Best{}, ErrNoThresholds
	}
	conf := confs[len(confs)/2]
	cur, ok, err := eval(si, conf)
	if err != nil {
		return best, err
	}
	if !ok {
		// The chain has no measured starting cost: any successful proposal
		// is an improvement over +Inf.
		cur = math.Inf(1)
	}
	temp := a.InitialTemp
	for it := 0; it < a.Iterations; it++ {
		if err := ck.Err(); err != nil {
			return best, err
		}
		// Propose a neighboring state: jitter the support index and pick
		// a random candidate confidence for it.
		nsi := si + rng.Intn(5) - 2
		if nsi < 0 {
			nsi = 0
		}
		if nsi >= len(supports) {
			nsi = len(supports) - 1
		}
		nconfs, err := obj.ConfidenceLevels(supports[nsi])
		if err != nil {
			return best, fmt.Errorf("optimizer: confidence levels at %g: %w", supports[nsi], err)
		}
		if len(nconfs) == 0 {
			continue
		}
		nconf := nconfs[rng.Intn(len(nconfs))]
		cost, ok, err := eval(nsi, nconf)
		if err != nil {
			return best, err
		}
		if ok && (cost <= cur || rng.Float64() < math.Exp((cur-cost)/temp)) {
			si, conf, cur = nsi, nconf, cost
		}
		temp *= a.Cooling
	}
	_ = conf
	if math.IsInf(best.Cost, 1) {
		return best, noBest(best)
	}
	return best, nil
}

// Factorial searches with iterated two-level factorial design (Fisher;
// paper §5): it evaluates the corners and center of the current
// (support, confidence) box, recenters on the best probe, halves the box
// and repeats. This greatly reduces the number of runs compared to an
// exhaustive sweep. The probes of each round are independent and are
// submitted as one batch.
type Factorial struct {
	// Rounds of box halving. Zero means 6.
	Rounds int
}

func (f Factorial) defaults() Factorial {
	if f.Rounds == 0 {
		f.Rounds = 6
	}
	return f
}

// Optimize implements Strategy.
func (f Factorial) Optimize(obj Objective) (Best, error) {
	return f.OptimizeContext(context.Background(), obj)
}

// OptimizeContext implements ContextStrategy: the context is checked at
// every round boundary, and on cancellation the design stops and returns
// the incumbent best with the error.
func (f Factorial) OptimizeContext(ctx context.Context, obj Objective) (Best, error) {
	f = f.defaults()
	ck := cancelcheck.New(ctx)
	supports, err := obj.SupportLevels()
	if err != nil {
		return Best{}, fmt.Errorf("optimizer: support levels: %w", err)
	}
	if len(supports) == 0 {
		return Best{}, ErrNoThresholds
	}
	confsAll, err := obj.ConfidenceLevels(supports[0])
	if err != nil {
		return Best{}, fmt.Errorf("optimizer: confidence levels at %g: %w", supports[0], err)
	}
	if len(confsAll) == 0 {
		return Best{}, ErrNoThresholds
	}
	supLo, supHi := supports[0], supports[len(supports)-1]
	confLo, confHi := confsAll[0], confsAll[len(confsAll)-1]

	best := Best{Cost: math.Inf(1)}
	seen := map[[2]float64]bool{}

	cs, cc := (supLo+supHi)/2, (confLo+confHi)/2 // box center
	hs, hc := (supHi-supLo)/2, (confHi-confLo)/2 // half-widths
	for round := 0; round < f.Rounds; round++ {
		if err := ck.Err(); err != nil {
			return best, err
		}
		corners := [][2]float64{
			{cs - hs, cc - hc}, {cs - hs, cc + hc},
			{cs + hs, cc - hc}, {cs + hs, cc + hc},
			{cs, cc},
		}
		// Clamp and drop already-probed corners, keeping first-occurrence
		// order: the round's survivors form one independent batch.
		probes := make([]Probe, 0, len(corners))
		for _, p := range corners {
			sup := clamp(p[0], supLo, supHi)
			conf := clamp(p[1], confLo, confHi)
			key := [2]float64{sup, conf}
			if seen[key] {
				continue
			}
			seen[key] = true
			probes = append(probes, Probe{Support: sup, Confidence: conf})
		}
		roundBest := math.Inf(1)
		var rbs, rbc float64
		for i, r := range evaluateAll(obj, probes) {
			if r.Err != nil {
				if perr := probeErr(&best, probes[i].Support, probes[i].Confidence, r.Err); perr != nil {
					return best, perr
				}
				continue
			}
			sup, conf := probes[i].Support, probes[i].Confidence
			best.Evaluations++
			step := Step{Support: sup, Confidence: conf,
				Cost: r.Cost, NumRules: r.NumRules, CacheHit: r.CacheHit}
			switch {
			case r.NumRules == 0:
				step.Reason = ReasonZeroRules
			case r.Cost < best.Cost:
				step.Accepted, step.Reason = true, ReasonImproved
				best.Support, best.Confidence = sup, conf
				best.Cost, best.NumRules = r.Cost, r.NumRules
			default:
				step.Reason = ReasonNoImprovement
			}
			best.Trace = append(best.Trace, step)
			if r.Cost < roundBest {
				roundBest = r.Cost
				rbs, rbc = sup, conf
			}
		}
		if !math.IsInf(roundBest, 1) {
			cs, cc = rbs, rbc
		}
		hs /= 2
		hc /= 2
	}
	if math.IsInf(best.Cost, 1) {
		return best, noBest(best)
	}
	return best, nil
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
