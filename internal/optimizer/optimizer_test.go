package optimizer

import (
	"errors"
	"math"
	"testing"
	"time"
)

// quadObjective is a synthetic objective with a unique optimum at
// (optSup, optConf) and a smooth quadratic bowl around it.
type quadObjective struct {
	supports []float64
	confs    []float64
	optSup   float64
	optConf  float64
	evals    int
	failAt   int // evaluation number to fail at; 0 = never
}

func (q *quadObjective) SupportLevels() ([]float64, error) { return q.supports, nil }

func (q *quadObjective) ConfidenceLevels(sup float64) ([]float64, error) { return q.confs, nil }

func (q *quadObjective) Evaluate(sup, conf float64) (float64, int, error) {
	q.evals++
	if q.failAt > 0 && q.evals >= q.failAt {
		return 0, 0, errors.New("objective failure")
	}
	ds, dc := sup-q.optSup, conf-q.optConf
	return 10 + 100*ds*ds + 100*dc*dc, 3, nil
}

func levels(lo, hi float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return out
}

func newQuad() *quadObjective {
	return &quadObjective{
		supports: levels(0.01, 0.2, 20),
		confs:    levels(0.1, 0.9, 9),
		optSup:   0.05,
		optConf:  0.5,
	}
}

func TestThresholdWalkFindsOptimum(t *testing.T) {
	q := newQuad()
	// Epsilon -1 requests exact comparison so the walk tracks the true
	// optimum; the default 0.25-bit hysteresis intentionally favors
	// earlier low-support solutions.
	best, err := ThresholdWalk{Epsilon: -1}.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(best.Support-q.optSup) > 0.02 {
		t.Errorf("support = %v, want near %v", best.Support, q.optSup)
	}
	if math.Abs(best.Confidence-q.optConf) > 0.11 {
		t.Errorf("confidence = %v, want near %v", best.Confidence, q.optConf)
	}
	if best.Evaluations == 0 || len(best.Trace) != best.Evaluations {
		t.Errorf("evaluations=%d trace=%d", best.Evaluations, len(best.Trace))
	}
}

func TestThresholdWalkStopsEarly(t *testing.T) {
	// With a bowl at the low end and sharp patience, the walk must not
	// probe every support level.
	q := newQuad()
	q.optSup = 0.01
	best, err := ThresholdWalk{Patience: 2}.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if best.Evaluations >= 20*9 {
		t.Errorf("walk did not stop early: %d evaluations", best.Evaluations)
	}
}

func TestThresholdWalkRespectsMaxEvals(t *testing.T) {
	q := newQuad()
	best, err := ThresholdWalk{MaxEvals: 7, Patience: 100}.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if best.Evaluations > 7 {
		t.Errorf("MaxEvals exceeded: %d", best.Evaluations)
	}
}

func TestThresholdWalkEmpty(t *testing.T) {
	q := &quadObjective{}
	if _, err := (ThresholdWalk{}).Optimize(q); !errors.Is(err, ErrNoThresholds) {
		t.Errorf("err = %v, want ErrNoThresholds", err)
	}
}

func TestThresholdWalkPropagatesError(t *testing.T) {
	q := newQuad()
	q.failAt = 3
	if _, err := (ThresholdWalk{}).Optimize(q); err == nil {
		t.Error("objective error should propagate")
	}
}

func TestAnnealFindsGoodSolution(t *testing.T) {
	q := newQuad()
	best, err := Anneal{Seed: 1, Iterations: 300}.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	// Annealing is stochastic; require it to get close.
	if math.Abs(best.Support-q.optSup) > 0.05 || math.Abs(best.Confidence-q.optConf) > 0.2 {
		t.Errorf("anneal best = (%v, %v), want near (%v, %v)",
			best.Support, best.Confidence, q.optSup, q.optConf)
	}
}

func TestAnnealDeterministicPerSeed(t *testing.T) {
	a, err := Anneal{Seed: 7}.Optimize(newQuad())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Anneal{Seed: 7}.Optimize(newQuad())
	if err != nil {
		t.Fatal(err)
	}
	if a.Support != b.Support || a.Confidence != b.Confidence || a.Cost != b.Cost {
		t.Error("same seed should give identical results")
	}
}

func TestAnnealEmpty(t *testing.T) {
	if _, err := (Anneal{Seed: 1}).Optimize(&quadObjective{}); !errors.Is(err, ErrNoThresholds) {
		t.Errorf("err = %v", err)
	}
}

func TestFactorialConverges(t *testing.T) {
	q := newQuad()
	best, err := Factorial{Rounds: 8}.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(best.Support-q.optSup) > 0.03 || math.Abs(best.Confidence-q.optConf) > 0.1 {
		t.Errorf("factorial best = (%v, %v), want near (%v, %v)",
			best.Support, best.Confidence, q.optSup, q.optConf)
	}
	// Factorial should be frugal: 5 probes per round minus dedup.
	if best.Evaluations > 8*5 {
		t.Errorf("too many evaluations: %d", best.Evaluations)
	}
}

func TestFactorialEmpty(t *testing.T) {
	if _, err := (Factorial{}).Optimize(&quadObjective{}); !errors.Is(err, ErrNoThresholds) {
		t.Errorf("err = %v", err)
	}
}

func TestSubsample(t *testing.T) {
	xs := levels(0, 1, 100)
	got := subsample(xs, 10)
	if len(got) > 10 {
		t.Errorf("len = %d", len(got))
	}
	if got[0] != 0 || got[len(got)-1] != 1 {
		t.Errorf("endpoints missing: %v", got)
	}
	// Short inputs pass through.
	short := []float64{1, 2}
	if len(subsample(short, 10)) != 2 {
		t.Error("short input should pass through")
	}
}

func TestZeroRuleEvaluationsNeverWin(t *testing.T) {
	// An objective that reports zero rules at its cheapest point: the
	// optimizer must pick a point with rules instead.
	q := &zeroRuleObjective{}
	best, err := ThresholdWalk{}.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if best.NumRules == 0 {
		t.Error("optimizer selected a zero-rule segmentation")
	}
}

type zeroRuleObjective struct{}

func (z *zeroRuleObjective) SupportLevels() ([]float64, error) { return []float64{0.1, 0.2}, nil }
func (z *zeroRuleObjective) ConfidenceLevels(float64) ([]float64, error) {
	return []float64{0.5}, nil
}
func (z *zeroRuleObjective) Evaluate(sup, conf float64) (float64, int, error) {
	if sup > 0.15 {
		return 0, 0, nil // cheap but useless: no rules survive
	}
	return 5, 2, nil
}

func TestThresholdWalkTimeBudget(t *testing.T) {
	// A pre-expired budget stops the walk after at most one support
	// level's worth of evaluations.
	q := newQuad()
	best, err := ThresholdWalk{TimeBudget: 1, Patience: 100}.Optimize(q)
	if err != nil && !errors.Is(err, ErrNoThresholds) {
		t.Fatal(err)
	}
	if best.Evaluations > len(q.confs) {
		t.Errorf("expired budget still ran %d evaluations", best.Evaluations)
	}
	// A generous budget changes nothing.
	q2 := newQuad()
	full, err := ThresholdWalk{Epsilon: -1, TimeBudget: time.Hour}.Optimize(q2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(full.Support-q2.optSup) > 0.02 {
		t.Errorf("generous budget changed the outcome: %v", full.Support)
	}
}
