// Package arcs is a Go implementation of ARCS, the Association Rule
// Clustering System of Lent, Swami and Widom ("Clustering Association
// Rules", ICDE 1997).
//
// ARCS segments a relational table over two user-chosen quantitative
// LHS attributes and a categorical criterion attribute: it bins the
// attributes, mines two-dimensional association rules in a single pass,
// plots them on a grid, smooths the grid with an image-processing
// low-pass filter, clusters adjacent rules into rectangles with the
// BitOp algorithm, prunes insignificant clusters, and tunes the support
// and confidence thresholds with a feedback loop that minimizes an MDL
// cost measured against samples of the data. The result is a small set
// of readable clustered association rules such as
//
//	40 <= age < 42 AND 40000 <= salary < 60000 => group = A
//
// # Quick start
//
//	tb, err := arcs.ReadCSV(file, nil)
//	if err != nil { ... }
//	res, err := arcs.Mine(tb, arcs.Config{
//		XAttr: "age", YAttr: "salary",
//		CritAttr: "group", CritValue: "A",
//	})
//	for _, rule := range res.Rules {
//		fmt.Println(rule)
//	}
//
// For repeated mining (different criterion values or thresholds) build a
// System once with New; the binned counts stay in memory and re-mining
// never re-reads the data.
package arcs

import (
	"context"
	"io"

	"arcs/internal/cluster"
	"arcs/internal/core"
	"arcs/internal/counts"
	"arcs/internal/dataset"
	"arcs/internal/mdl"
	"arcs/internal/optimizer"
	"arcs/internal/rules"
	"arcs/internal/segment"
)

// Config parameterizes an ARCS run. Zero values take the paper's
// defaults (50 bins, equi-width binning, binary smoothing, 1% pruning,
// unbiased MDL weights, threshold-walk search).
type Config = core.Config

// System is an initialized ARCS instance over one dataset: binned counts
// plus a verification sample, supporting any number of mining runs.
type System = core.System

// Result is the outcome of a run: the final clustered rules, the chosen
// thresholds, the MDL cost, verification error counts and the search
// trace.
type Result = core.Result

// CacheStats reports probe-cache effectiveness: per run on Result.Cache,
// cumulatively via System.ProbeCacheStats.
type CacheStats = core.CacheStats

// ClusteredRule is one clustered association rule of a segmentation.
type ClusteredRule = rules.ClusteredRule

// Counts is the read API of a System's built count substrate
// (System.Counts): grid dimensions and the per-cell support/confidence
// counts of paper §3.2. Implementations include the dense in-memory
// array and the sharded parallel-ingest backend selected by
// Config.IngestWorkers; both produce bit-identical counts.
type Counts = counts.Backend

// MDLWeights biases the cost function (wc, we of paper §3.6).
type MDLWeights = mdl.Weights

// ThresholdWalk configures the paper's low-to-high threshold search.
type ThresholdWalk = optimizer.ThresholdWalk

// Anneal configures the simulated-annealing search alternative.
type Anneal = optimizer.Anneal

// Factorial configures the factorial-design search alternative.
type Factorial = optimizer.Factorial

// AttributeScore is an attribute ranked by information gain against the
// criterion, from SelectAttributePair.
type AttributeScore = core.AttributeScore

// BinStrategy selects how quantitative attributes are partitioned.
type BinStrategy = core.BinStrategy

// SmoothingMode selects the grid-smoothing preprocessing.
type SmoothingMode = core.SmoothingMode

// SearchStrategy selects the threshold optimizer.
type SearchStrategy = core.SearchStrategy

// Binning strategies for quantitative attributes.
const (
	BinEquiWidth   = core.BinEquiWidth
	BinEquiDepth   = core.BinEquiDepth
	BinHomogeneity = core.BinHomogeneity
	BinSupervised  = core.BinSupervised
)

// Grid smoothing modes (paper §3.4 and §5).
const (
	SmoothBinary        = core.SmoothBinary
	SmoothOff           = core.SmoothOff
	SmoothWeighted      = core.SmoothWeighted
	SmoothMorphological = core.SmoothMorphological
)

// Threshold search strategies (paper §3.7 and §5).
const (
	SearchWalk      = core.SearchWalk
	SearchAnneal    = core.SearchAnneal
	SearchFactorial = core.SearchFactorial
	SearchFixed     = core.SearchFixed
)

// RunError is the structured failure of a pipeline run: the phase that
// failed, the cause (errors.Is sees context.Canceled through it), and
// whether a degraded partial Result accompanies the error.
type RunError = core.RunError

// PanicError is a panic recovered inside a single threshold probe, with
// the stack captured at the point of panic. The search skips the failed
// probe and continues.
type PanicError = core.PanicError

// AsRunError extracts a *RunError from err's chain, nil when absent.
func AsRunError(err error) *RunError { return core.AsRunError(err) }

// AsPanicError extracts a *PanicError from err's chain, nil when absent.
func AsPanicError(err error) *PanicError { return core.AsPanicError(err) }

// New builds a System from a tuple source, performing the binning pass
// and drawing the verification sample.
func New(src Source, cfg Config) (*System, error) {
	return core.New(src, cfg)
}

// NewContext is New with cooperative cancellation of the binning and
// sampling passes. A canceled initialization returns no System — a
// half-binned count array would bias every later run.
func NewContext(ctx context.Context, src Source, cfg Config) (*System, error) {
	return core.NewContext(ctx, src, cfg)
}

// Mine is the one-shot convenience API: build a System and run the full
// feedback loop for cfg.CritValue.
func Mine(src Source, cfg Config) (*Result, error) {
	sys, err := core.New(src, cfg)
	if err != nil {
		return nil, err
	}
	return sys.Run()
}

// MineContext is Mine with cooperative cancellation and graceful
// degradation: cancellation mid-search returns the best-so-far Result
// with Result.Degraded set alongside a *RunError with Partial=true. See
// System.RunValueContext for the full contract.
func MineContext(ctx context.Context, src Source, cfg Config) (*Result, error) {
	sys, err := core.NewContext(ctx, src, cfg)
	if err != nil {
		return nil, err
	}
	return sys.RunContext(ctx)
}

// SegmentAll builds a System and computes a segmentation for every value
// of the criterion attribute, reusing the single binning pass.
func SegmentAll(src Source, cfg Config) (map[string]*Result, error) {
	sys, err := core.New(src, cfg)
	if err != nil {
		return nil, err
	}
	return sys.SegmentAll()
}

// SegmentAllContext is SegmentAll with cooperative cancellation: on
// cancel the returned map holds every completed (possibly degraded)
// per-value result and the error reports Partial when it is non-empty.
func SegmentAllContext(ctx context.Context, src Source, cfg Config) (map[string]*Result, error) {
	sys, err := core.NewContext(ctx, src, cfg)
	if err != nil {
		return nil, err
	}
	return sys.SegmentAllContext(ctx)
}

// SelectAttributePair ranks quantitative attributes by information gain
// against the criterion attribute and returns the best two — an
// automated alternative to choosing the LHS attributes by hand.
func SelectAttributePair(tb *Table, critAttr string, bins int) (x, y string, scores []AttributeScore, err error) {
	return core.SelectAttributePair(tb, critAttr, bins)
}

// PairScore is a candidate LHS pair scored by joint information gain.
type PairScore = core.PairScore

// SelectAttributePairJoint scores every pair of quantitative attributes
// by the information gain of their joint 2D partition, detecting pairs
// that are individually uninformative but jointly decisive.
func SelectAttributePairJoint(tb *Table, critAttr string, bins int) (x, y string, scores []PairScore, err error) {
	return core.SelectAttributePairJoint(tb, critAttr, bins)
}

// CombineRules merges two-attribute clustered rules from two different
// attribute pairs sharing one attribute into rules over three
// attributes (paper §5 future work). See the cluster package for
// semantics.
func CombineRules(a, b []ClusteredRule) ([]MultiRule, error) {
	return clusterCombine(a, b)
}

// CombineChain iteratively combines clustered-rule sets from a chain of
// attribute pairs — (A,B), (B,C), (C,D), ... — into rules over all the
// attributes involved, intersecting every shared attribute's ranges.
func CombineChain(ruleSets ...[]ClusteredRule) ([]MultiRule, error) {
	return cluster.CombineChain(ruleSets...)
}

// MultiRuleStats are the verified joint measures of a combined rule.
type MultiRuleStats = cluster.MultiRuleStats

// VerifyMultiRule measures a combined rule's true joint support and
// confidence against a table (the Combine* constructors only estimate
// them conservatively from the 2D parts). critAttr names the criterion
// attribute.
func VerifyMultiRule(m MultiRule, tb *Table, critAttr string) (MultiRuleStats, error) {
	idx, err := tb.Schema().Index(critAttr)
	if err != nil {
		return MultiRuleStats{}, err
	}
	return cluster.VerifyMultiRule(m, tb, idx)
}

// SegmentModel is a serializable segmentation artifact: save a mined
// segmentation to JSON, load it later and apply it to new data.
type SegmentModel = segment.Model

// NewSegmentModel packages a Result's rules into a persistable model.
func NewSegmentModel(res *Result) (*SegmentModel, error) {
	return segment.New(res.Rules, res.MinSupport, res.MinConfidence)
}

// ReadSegmentModel deserializes a model written by SegmentModel.Write.
func ReadSegmentModel(r io.Reader) (*SegmentModel, error) {
	return segment.Read(r)
}

// ensure dataset types are referenced (aliases live in data.go).
var _ = dataset.Quantitative
